"""Multi-seed statistics tests and §6 randomized comparisons."""

import numpy as np
import pytest

from repro.analysis.randomized import (
    SeedSummary,
    compare_randomized,
    seed_sweep,
)
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies import GCM, ItemLRU, MarkAllGCM, PartialGCM
from repro.workloads import hot_and_stream, sequential_scan


@pytest.fixture
def mapping():
    return FixedBlockMapping(universe=256, block_size=8)


def test_deterministic_policy_zero_variance(mapping):
    trace = Trace(
        np.random.default_rng(0).integers(0, 256, 1500, dtype=np.int64),
        mapping,
    )
    summary = seed_sweep(
        lambda seed: ItemLRU(32, mapping), trace, seeds=range(5)
    )
    assert summary.std == 0.0
    assert summary.ci_low == summary.mean == summary.ci_high


def test_randomized_policy_summary_sane(mapping):
    trace = Trace(
        np.random.default_rng(1).integers(0, 256, 1500, dtype=np.int64),
        mapping,
    )
    summary = seed_sweep(
        lambda seed: GCM(32, mapping, seed=seed), trace, seeds=range(8)
    )
    assert summary.n == 8
    assert summary.ci_low <= summary.mean <= summary.ci_high
    assert 0 < summary.mean <= 1500


def test_single_seed_has_no_interval(mapping):
    trace = Trace(np.array([0, 1, 2]), mapping)
    summary = seed_sweep(lambda s: GCM(8, mapping, seed=s), trace, seeds=[3])
    assert summary.ci_half_width == 0.0


def test_requires_seeds(mapping):
    trace = Trace(np.array([0]), mapping)
    with pytest.raises(ConfigurationError):
        seed_sweep(lambda s: GCM(8, mapping, seed=s), trace, seeds=[])


def test_metric_selection(mapping):
    trace = sequential_scan(256, block_size=8)
    summary = seed_sweep(
        lambda s: GCM(64, mapping, seed=s),
        trace,
        seeds=range(3),
        metric="spatial_hits",
    )
    assert summary.mean > 0


def test_gcm_beats_markall_with_confidence():
    """§6: on scattered-hot + stream traffic GCM's CI sits below
    MarkAllGCM's across seeds."""
    trace = hot_and_stream(
        20_000, hot_items=64, stream_blocks=128, block_size=8,
        hot_fraction=0.5, seed=4,
    )
    k = 128
    rows = compare_randomized(
        {
            "gcm": lambda s: GCM(k, trace.mapping, seed=s),
            "gcm-markall": lambda s: MarkAllGCM(k, trace.mapping, seed=s),
        },
        trace,
        seeds=range(6),
    )
    by = {r["label"]: r for r in rows}
    assert by["gcm"]["ci_high"] < by["gcm-markall"]["ci_low"]


def test_partial_gcm_interpolates_on_scan():
    """load_count dial: spatial hits grow monotonically in expectation."""
    trace = sequential_scan(512, block_size=8, repeats=2)
    k = 64
    means = []
    for lc in (1, 4, 8):
        s = seed_sweep(
            lambda seed, lc=lc: PartialGCM(k, trace.mapping, load_count=lc, seed=seed),
            trace,
            seeds=range(4),
            metric="misses",
        )
        means.append(s.mean)
    assert means[0] > means[1] > means[2]

"""Property-based tests over the closed-form bounds.

These encode the structural relationships the paper's discussion
relies on — monotonicity in the online size, dominance orderings
between the bound families, and degeneration to classical caching at
``B = 1`` — over randomized ``(k, h, B)`` draws *within the model's
standing assumptions* (§2: ``k ≫ B``; the constructions additionally
need ``h > B`` and ``a < h``).  Outside that regime the closed forms
legitimately collapse (e.g. Theorem 2 at ``k ≈ B``), which the unit
tests cover separately.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.bounds import (
    block_cache_lower,
    gc_general_lower,
    general_a_lower,
    iblp_optimal_item_layer,
    iblp_optimal_ratio,
    iblp_ratio,
    item_cache_lower,
    sleator_tarjan_lower,
)

_b = st.integers(2, 64)
_h_mult = st.floats(2.0, 100.0)  # h = B * mult keeps h > B
_k_mult = st.floats(2.0, 200.0)  # k = h * mult keeps k >> h >= B


def _khB(B, h_mult, k_mult):
    h = B * h_mult
    k = h * k_mult
    return k, h, B


@settings(max_examples=200, deadline=None)
@given(B=_b, hm=_h_mult, km=_k_mult)
def test_gc_lower_dominates_sleator_tarjan(B, hm, km):
    k, h, B = _khB(B, hm, km)
    assert gc_general_lower(k, h, B) >= sleator_tarjan_lower(k, h) - 1e-9


@settings(max_examples=200, deadline=None)
@given(B=_b, hm=_h_mult, km=_k_mult)
def test_general_lower_is_weakest_specialization(B, hm, km):
    k, h, B = _khB(B, hm, km)
    assert gc_general_lower(k, h, B) <= item_cache_lower(k, h, B) + 1e-9
    blk = block_cache_lower(k, h, B)
    if not math.isinf(blk):
        assert gc_general_lower(k, h, B) <= blk * (1 + 1e-9) + 1e-9


@settings(max_examples=200, deadline=None)
@given(B=_b, hm=_h_mult, km=_k_mult, a_frac=st.floats(0.0, 1.0))
def test_theorem4_between_extremes(B, hm, km, a_frac):
    k, h, B = _khB(B, hm, km)
    a = 1 + a_frac * (B - 1)
    assume(a < h)
    val = general_a_lower(k, h, B, a)
    extremes = (general_a_lower(k, h, B, 1), general_a_lower(k, h, B, B))
    assert min(extremes) - 1e-9 <= val <= max(extremes) + 1e-9


@settings(max_examples=200, deadline=None)
@given(B=_b, hm=_h_mult, m1=st.floats(2.0, 50.0), m2=st.floats(2.0, 50.0))
def test_bounds_decrease_in_k(B, hm, m1, m2):
    h = B * hm
    k1, k2 = h * min(m1, m2), h * max(m1, m2)
    assume(k2 > k1 * 1.01)
    assert sleator_tarjan_lower(k2, h) <= sleator_tarjan_lower(k1, h) + 1e-9
    assert gc_general_lower(k2, h, B) <= gc_general_lower(k1, h, B) + 1e-9
    assert iblp_optimal_ratio(k2, h, B) <= iblp_optimal_ratio(k1, h, B) * (
        1 + 1e-6
    )


@settings(max_examples=200, deadline=None)
@given(hm=st.floats(2.0, 1000.0), km=_k_mult)
def test_b1_degenerates_to_classical(hm, km):
    h = 1 + hm
    k = h * km
    st_bound = sleator_tarjan_lower(k, h)
    assert item_cache_lower(k, h, 1) == pytest.approx(st_bound)
    assert gc_general_lower(k, h, 1) == pytest.approx(st_bound)
    # §5.3's IBLP bound is derived for large B; at B = 1 it stays
    # within a small constant of LRU's tight ratio.
    assert iblp_optimal_ratio(k, h, 1) <= 3 * k / (k - h) + 1e-9


@settings(max_examples=150, deadline=None)
@given(B=_b, hm=_h_mult, km=_k_mult)
def test_upper_dominates_lower(B, hm, km):
    k, h, B = _khB(B, hm, km)
    assert iblp_optimal_ratio(k, h, B) >= gc_general_lower(k, h, B) * (
        1 - 1e-9
    )


@settings(max_examples=150, deadline=None)
@given(B=_b, hm=_h_mult, km=_k_mult)
def test_optimal_split_is_argmin_locally(B, hm, km):
    """Perturbing the §5.3 split never improves Theorem 7."""
    k, h, B = _khB(B, hm, km)
    i_star = iblp_optimal_item_layer(k, h, B)
    if i_star >= k:  # small-k regime: pure item cache
        return
    best = iblp_ratio(i_star, k - i_star, h, B)
    for delta in (-0.05, 0.05):
        i = i_star * (1 + delta)
        if h < i <= k:
            assert iblp_ratio(i, k - i, h, B) >= best * (1 - 1e-6)


@settings(max_examples=150, deadline=None)
@given(B=_b, hm=_h_mult, km=_k_mult)
def test_ratio_at_least_one(B, hm, km):
    k, h, B = _khB(B, hm, km)
    assert gc_general_lower(k, h, B) >= 1.0 - 1e-9
    assert iblp_optimal_ratio(k, h, B) >= 1.0 - 1e-9


@settings(max_examples=150, deadline=None)
@given(B=_b, hm=_h_mult, km=_k_mult)
def test_gap_tapers_with_augmentation(B, hm, km):
    """§4.4: the GC/ST gap is ~B at k=2h and ~1 at k=B*h and beyond."""
    h = B * hm
    gap_at_2h = gc_general_lower(2 * h, h, B) / sleator_tarjan_lower(2 * h, h)
    gap_at_bh = gc_general_lower(4 * B * h, h, B) / sleator_tarjan_lower(
        4 * B * h, h
    )
    assert gap_at_2h > gap_at_bh
    assert gap_at_2h >= B / 4
    assert gap_at_bh <= 3.0

"""IBLP tests: layered semantics, ordering, duplication, degenerate splits."""

import numpy as np
import pytest

from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies import IBLP, BlockFirstIBLP, BlockLRU, ItemLRU
from repro.workloads import hot_and_stream


@pytest.fixture
def mapping():
    return FixedBlockMapping(universe=128, block_size=4)


def test_default_split_is_even(mapping):
    p = IBLP(16, mapping)
    assert p.item_layer_size == 8
    assert p.block_layer_size == 8


def test_invalid_split_rejected(mapping):
    with pytest.raises(ConfigurationError):
        IBLP(16, mapping, item_layer_size=17)
    with pytest.raises(ConfigurationError):
        IBLP(16, mapping, item_layer_size=-1)


def test_full_miss_loads_item_and_block(mapping):
    p = IBLP(16, mapping, item_layer_size=8)
    out = p.access(1)
    assert not out.hit
    assert out.loaded == frozenset([0, 1, 2, 3])
    assert 1 in p.item_layer_contents()
    assert 0 in p.block_layer_blocks()


def test_block_layer_hit_promotes_item(mapping):
    p = IBLP(16, mapping, item_layer_size=8)
    p.access(1)
    out = p.access(2)  # resident via block layer only
    assert out.hit
    assert 2 in p.item_layer_contents()


def test_item_layer_hit_does_not_touch_block_lru(mapping):
    """§5.1 ordering: temporal hits must not refresh block recency."""
    p = IBLP(16, mapping, item_layer_size=8)
    p.access(0)  # block 0 in block layer, item 0 in item layer
    p.access(4)  # block 1
    # Hit item 0 repeatedly through the item layer.
    for _ in range(5):
        assert p.access(0).hit
    # Insert a third block: the LRU block must be block 0 (its recency
    # was never refreshed by the item-layer hits).
    p.access(8)
    assert 0 not in p.block_layer_blocks()
    assert 1 in p.block_layer_blocks()


def test_blockfirst_variant_reorders_on_hits(mapping):
    """The ablation variant lets hits refresh block recency."""
    p = BlockFirstIBLP(16, mapping, item_layer_size=8)
    p.access(0)
    p.access(4)
    for _ in range(5):
        assert p.access(0).hit  # refreshes block 0 here
    p.access(8)
    assert 0 in p.block_layer_blocks()
    assert 1 not in p.block_layer_blocks()


def test_duplication_is_not_double_counted(mapping):
    """An item in both layers is one resident item to the engine."""
    p = IBLP(8, mapping, item_layer_size=4)
    p.access(0)  # in both layers
    assert p.resident_items() == frozenset([0, 1, 2, 3])


def test_item_layer_eviction_keeps_block_copy_resident(mapping):
    # b = 12 holds three whole blocks, so block 0 survives while the
    # two-slot item layer evicts item 0.
    p = IBLP(14, mapping, item_layer_size=2)
    p.access(0)
    p.access(4)
    out = p.access(8)  # item layer evicts 0, but block 0 still holds it
    assert 0 not in p.item_layer_contents()
    assert p.contains(0)
    assert 0 not in out.evicted


def test_zero_block_layer_degenerates_to_item_lru(mapping):
    trace = Trace(
        np.random.default_rng(5).integers(0, 128, 2000, dtype=np.int64), mapping
    )
    iblp = simulate(IBLP(16, mapping, item_layer_size=16), trace)
    lru = simulate(ItemLRU(16, mapping), trace)
    assert iblp.misses == lru.misses


def test_zero_item_layer_behaves_like_block_cache(mapping):
    trace = Trace(np.arange(128), mapping)
    iblp = simulate(IBLP(16, mapping, item_layer_size=0), trace)
    blk = simulate(BlockLRU(16, mapping), trace)
    assert iblp.misses == blk.misses == 32


def test_scan_exploits_spatial_locality(mapping):
    trace = Trace(np.arange(128), mapping)
    res = simulate(IBLP(16, mapping), trace)
    assert res.misses == 32  # one per block via the block layer
    assert res.spatial_hits == 96


def test_beats_both_baselines_on_mixed_traffic():
    trace = hot_and_stream(
        length=40_000,
        hot_items=64,
        stream_blocks=256,
        block_size=8,
        hot_fraction=0.55,
        seed=11,
    )
    k = 256
    iblp = simulate(IBLP(k, trace.mapping), trace).misses
    item = simulate(ItemLRU(k, trace.mapping), trace).misses
    block = simulate(BlockLRU(k, trace.mapping), trace).misses
    assert iblp < item
    assert iblp < block


def test_referee_validates_iblp_extensively(mapping):
    trace = Trace(
        np.random.default_rng(9).integers(0, 128, 3000, dtype=np.int64), mapping
    )
    for split in (0, 4, 8, 12, 16):
        res = simulate(
            IBLP(16, mapping, item_layer_size=split),
            trace,
            cross_check_every=101,
        )
        assert res.accesses == 3000


def test_reset_restores_configuration(mapping):
    p = IBLP(16, mapping, item_layer_size=5)
    p.access(0)
    p.reset()
    assert p.item_layer_size == 5
    assert not p.contains(0)


def test_tiny_block_layer_trims(mapping):
    """Block layer smaller than B still includes the requested item."""
    p = IBLP(4, mapping, item_layer_size=2)  # block layer size 2 < B=4
    out = p.access(3)
    assert 3 in out.loaded
    res_items = p.resident_items()
    assert 3 in res_items


def test_spatial_hits_counted_via_engine(mapping):
    trace = Trace(np.array([0, 1, 0, 1, 2]), mapping)
    res = simulate(IBLP(8, mapping, item_layer_size=4), trace)
    assert res.misses == 1
    assert res.spatial_hits == 2  # first hits on 1 and 2
    assert res.temporal_hits == 2  # repeats of 0 and 1

"""Size-dependence experiment tests (§5.3 / §6.2) and PartialGCM."""

import numpy as np
import pytest

from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.experiments import size_dependence
from repro.policies import GCM, MarkingLRU, PartialGCM
from repro.workloads import interleaved_streams


class TestBoundsCrossing:
    def test_crossing_exists_between_design_points(self):
        cross = size_dependence.bounds_crossing()
        assert cross["h_small"] < cross["h_cross"] < cross["h_large"]

    def test_each_split_wins_at_home(self):
        cross = size_dependence.bounds_crossing()
        assert (
            cross["ratio_small_split_at_h_small"]
            < cross["ratio_large_split_at_h_small"]
        )
        assert (
            cross["ratio_large_split_at_h_large"]
            < cross["ratio_small_split_at_h_large"]
        )


class TestEmpiricalFlip:
    def test_ranking_flips(self):
        rows = size_dependence.empirical_flip(k=128, B=8, length=20_000)
        by = {(r["workload"], r["split"]): r["misses"] for r in rows}
        assert (
            by[("temporal_heavy", "item_heavy_split")]
            < by[("temporal_heavy", "block_heavy_split")]
        )
        assert (
            by[("spatial_heavy", "block_heavy_split")]
            < by[("spatial_heavy", "item_heavy_split")]
        )

    def test_render_smoke(self):
        text = size_dependence.render(k=64, B=4)
        assert "Size dependence" in text


class TestInterleavedStreams:
    def test_structure(self):
        t = interleaved_streams(12, streams=3, blocks_per_stream=2, block_size=2)
        # Round-robin: stream 0 item 0, stream 1 item 4, stream 2 item 8...
        assert t.items[:6].tolist() == [0, 4, 8, 1, 5, 9]

    def test_no_item_repeats_within_lap(self):
        t = interleaved_streams(64, streams=2, blocks_per_stream=4, block_size=4)
        lap = 2 * 4 * 4
        assert len(set(t.items[:lap].tolist())) == lap

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            interleaved_streams(10, streams=0, blocks_per_stream=1)


class TestPartialGCM:
    @pytest.fixture
    def mapping(self):
        return FixedBlockMapping(universe=64, block_size=4)

    def test_load_count_bounds_loads(self, mapping):
        p = PartialGCM(16, mapping, load_count=2, seed=0)
        out = p.access(0)
        assert 0 in out.loaded
        assert len(out.loaded) == 2

    def test_load_count_one_is_markinglike(self, mapping):
        trace = Trace(np.arange(64), mapping)
        partial = simulate(PartialGCM(16, mapping, load_count=1, seed=0), trace)
        marking = simulate(MarkingLRU(16, mapping), trace)
        assert partial.misses == marking.misses == 64

    def test_load_count_b_matches_gcm(self, mapping):
        trace = Trace(
            np.random.default_rng(1).integers(0, 64, 800, dtype=np.int64),
            mapping,
        )
        partial = simulate(PartialGCM(16, mapping, load_count=4, seed=3), trace)
        gcm = simulate(GCM(16, mapping, seed=3), trace)
        assert partial.misses == gcm.misses

    def test_rejects_bad_load_count(self, mapping):
        with pytest.raises(ConfigurationError):
            PartialGCM(16, mapping, load_count=0)

    def test_reset_preserves_load_count(self, mapping):
        p = PartialGCM(16, mapping, load_count=3, seed=2)
        p.access(0)
        p.reset()
        assert p.max_load == 3
        assert not p.contains(0)

    def test_referee_validated(self, mapping):
        trace = Trace(
            np.random.default_rng(2).integers(0, 64, 1200, dtype=np.int64),
            mapping,
        )
        for lc in (1, 2, 3, 4):
            res = simulate(
                PartialGCM(12, mapping, load_count=lc, seed=1),
                trace,
                cross_check_every=61,
            )
            assert res.accesses == 1200

    def test_monotone_spatial_hits_on_scan(self, mapping):
        trace = Trace(np.tile(np.arange(64), 2), mapping)
        hits = [
            simulate(
                PartialGCM(16, mapping, load_count=lc, seed=0), trace
            ).spatial_hits
            for lc in (1, 2, 4)
        ]
        assert hits[0] <= hits[1] <= hits[2]

"""Workload generator tests."""

import numpy as np
import pytest

from repro.core.engine import simulate
from repro.errors import ConfigurationError, TraceFormatError
from repro.locality.profile import profile_trace
from repro.policies import BlockLRU, ItemLRU
from repro.workloads import (
    block_runs,
    block_zipf,
    cyclic_scan,
    dram_cache_workload,
    hot_and_stream,
    interleave,
    markov_spatial,
    page_cache_workload,
    phase_mixture,
    sequential_scan,
    strided,
    uniform_random,
    zipf_items,
)


class TestSynthetic:
    def test_uniform_shape_and_range(self):
        t = uniform_random(1000, universe=100, block_size=4, seed=1)
        assert len(t) == 1000
        assert t.items.min() >= 0 and t.items.max() < 100

    def test_uniform_seed_determinism(self):
        a = uniform_random(100, 50, seed=7)
        b = uniform_random(100, 50, seed=7)
        assert a.items.tolist() == b.items.tolist()

    def test_zipf_skews_popularity(self):
        t = zipf_items(20_000, universe=1000, alpha=1.2, seed=2)
        counts = np.bincount(t.items, minlength=1000)
        top = np.sort(counts)[-10:].sum()
        assert top > 0.25 * len(t)  # head dominates

    def test_zipf_alpha_zero_is_uniform_like(self):
        t = zipf_items(10_000, universe=100, alpha=0.0, seed=3)
        counts = np.bincount(t.items, minlength=100)
        assert counts.max() < 3 * counts[counts > 0].mean()

    def test_sequential_scan(self):
        t = sequential_scan(universe=32, block_size=8, repeats=2)
        assert len(t) == 64
        assert t.items[:32].tolist() == list(range(32))

    def test_cyclic_scan(self):
        t = cyclic_scan(10, working_set=3)
        assert t.items.tolist() == [0, 1, 2, 0, 1, 2, 0, 1, 2, 0]

    def test_strided(self):
        t = strided(5, universe=100, stride=10)
        assert t.items.tolist() == [0, 10, 20, 30, 40]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_random(0, 10)
        with pytest.raises(ConfigurationError):
            zipf_items(10, 10, alpha=-1)
        with pytest.raises(ConfigurationError):
            strided(5, 100, stride=0)
        with pytest.raises(ConfigurationError):
            sequential_scan(10, repeats=0)


class TestSpatial:
    def test_block_runs_full_blocks_have_high_ratio(self):
        t = block_runs(5000, universe=512, block_size=8, seed=4)
        prof = profile_trace(t, windows=[64])
        assert prof.spatial_ratio()[0] > 4.0

    def test_block_runs_single_item_has_low_ratio(self):
        t = block_runs(5000, universe=512, block_size=8, run_length=1, seed=4)
        prof = profile_trace(t, windows=[64])
        assert prof.spatial_ratio()[0] < 1.5

    def test_markov_stay_dial(self):
        sticky = markov_spatial(5000, 512, 8, stay=0.95, seed=5)
        jumpy = markov_spatial(5000, 512, 8, stay=0.05, seed=5)
        r_sticky = profile_trace(sticky, windows=[64]).spatial_ratio()[0]
        r_jumpy = profile_trace(jumpy, windows=[64]).spatial_ratio()[0]
        assert r_sticky > r_jumpy

    def test_block_zipf_hot_blocks(self):
        t = block_zipf(10_000, universe=1024, block_size=8, alpha=1.2, seed=6)
        blocks = t.block_trace()
        counts = np.bincount(blocks, minlength=128)
        assert np.sort(counts)[-5:].sum() > 0.2 * len(t)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            block_runs(10, 64, 8, run_length=9)
        with pytest.raises(ConfigurationError):
            markov_spatial(10, 64, 8, stay=1.0)
        with pytest.raises(ConfigurationError):
            block_zipf(10, 64, 8, within_run=0)


class TestMixtures:
    def test_hot_and_stream_scattered_defeats_block_cache(self):
        t = hot_and_stream(20_000, hot_items=32, stream_blocks=128, seed=7)
        k = 128
        item = simulate(ItemLRU(k, t.mapping), t).misses
        block = simulate(BlockLRU(k, t.mapping), t).misses
        # Scattered hot items pollute the block cache badly.
        assert block > 0.3 * item

    def test_hot_and_stream_packed_favours_block_cache(self):
        t = hot_and_stream(
            20_000, hot_items=32, stream_blocks=128, scatter_hot=False, seed=7
        )
        k = 128
        item = simulate(ItemLRU(k, t.mapping), t).misses
        block = simulate(BlockLRU(k, t.mapping), t).misses
        assert block < item

    def test_interleave_pattern(self):
        a = uniform_random(10, 64, block_size=4, seed=1)
        b = uniform_random(10, 64, block_size=4, seed=2)
        t = interleave([a, b], pattern=[0, 0, 1])
        assert t.items[0] == a.items[0]
        assert t.items[1] == a.items[1]
        assert t.items[2] == b.items[0]

    def test_interleave_rejects_mixed_mappings(self):
        a = uniform_random(10, 64, block_size=4)
        b = uniform_random(10, 64, block_size=8)
        with pytest.raises(TraceFormatError):
            interleave([a, b], pattern=[0, 1])

    def test_interleave_rejects_bad_pattern(self):
        a = uniform_random(10, 64, block_size=4)
        with pytest.raises(ConfigurationError):
            interleave([a], pattern=[1])

    def test_phase_mixture_concatenates(self):
        a = uniform_random(10, 64, block_size=4, seed=1)
        b = uniform_random(5, 64, block_size=4, seed=2)
        t = phase_mixture([a, b], repeats=2)
        assert len(t) == 30
        assert t.items[:10].tolist() == a.items.tolist()


class TestScenarios:
    def test_dram_workload_block_structure(self):
        t = dram_cache_workload(length=5000, rows=64, lines_per_row=16, seed=8)
        assert t.block_size == 16
        assert len(t) == 5000

    def test_dram_bursts_create_spatial_locality(self):
        t = dram_cache_workload(length=20_000, seed=9, noise_fraction=0.0)
        prof = profile_trace(t, windows=[32])
        assert prof.spatial_ratio()[0] > 2.0

    def test_page_cache_scans_whole_files(self):
        t = page_cache_workload(
            length=5000, files=16, pages_per_file=8, scan_fraction=1.0, seed=10
        )
        # Pure scans: every file read is sequential within a block.
        prof = profile_trace(t, windows=[8])
        assert prof.spatial_ratio()[0] > 3.0

    def test_scenarios_seeded(self):
        a = dram_cache_workload(length=1000, seed=3)
        b = dram_cache_workload(length=1000, seed=3)
        assert a.items.tolist() == b.items.tolist()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            dram_cache_workload(rows=1)
        with pytest.raises(ConfigurationError):
            page_cache_workload(scan_fraction=2.0)

"""Sliding-window distinct counter: unit + property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.structs.window_counter import (
    SlidingWindowDistinct,
    max_distinct_per_window,
)


def naive_max_distinct(trace, n):
    if not len(trace):
        return 0
    if n >= len(trace):
        return len(set(trace))
    return max(
        len(set(trace[i : i + n])) for i in range(len(trace) - n + 1)
    )


def test_push_sequence_counts():
    w = SlidingWindowDistinct(3)
    assert [w.push(x) for x in [7, 7, 8, 9, 7]] == [1, 1, 2, 3, 3]


def test_window_retires_old_values():
    w = SlidingWindowDistinct(2)
    w.push(1)
    w.push(2)
    assert w.distinct == 2
    w.push(3)  # retires 1
    assert w.distinct == 2


def test_full_flag():
    w = SlidingWindowDistinct(3)
    w.push(1)
    assert not w.full
    w.push(1)
    w.push(1)
    assert w.full


def test_invalid_window_raises():
    with pytest.raises(ConfigurationError):
        SlidingWindowDistinct(0)
    with pytest.raises(ConfigurationError):
        max_distinct_per_window([1, 2], [0])


def test_max_distinct_known_trace():
    trace = [0, 1, 0, 2, 3, 3, 1]
    got = max_distinct_per_window(trace, [1, 2, 3, 4, 100])
    assert got[1] == 1
    assert got[2] == 2
    assert got[3] == 3
    assert got[4] == naive_max_distinct(trace, 4)
    assert got[100] == 4  # whole-trace distinct count


def test_empty_trace():
    assert max_distinct_per_window([], [1, 5]) == {1: 0, 5: 0}


def test_rejects_2d_input():
    with pytest.raises(ConfigurationError):
        max_distinct_per_window(np.zeros((2, 2), dtype=int), [1])


@settings(max_examples=150, deadline=None)
@given(
    st.lists(st.integers(0, 6), min_size=1, max_size=40),
    st.integers(1, 45),
)
def test_matches_naive(trace, n):
    got = max_distinct_per_window(trace, [n])[n]
    assert got == naive_max_distinct(trace, n)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 9), min_size=2, max_size=50))
def test_monotone_in_window_size(trace):
    """f(n) is non-decreasing in n (working-set functions grow)."""
    sizes = list(range(1, len(trace) + 1))
    got = max_distinct_per_window(trace, sizes)
    values = [got[n] for n in sizes]
    assert all(a <= b for a, b in zip(values, values[1:]))

"""Coverage for small helpers and cross-extension interplay."""

import numpy as np
import pytest

from repro.core.engine import miss_counts, simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.readwrite import WritebackSimulator, make_rw_trace
from repro.core.trace import Trace
from repro.hierarchy import TwoLevelSimulator
from repro.policies import GCM, AdaptiveIBLP, BlockLRU, ItemLRU
from repro.workloads import markov_spatial, zipf_items


def test_miss_counts_helper():
    mapping = FixedBlockMapping(universe=64, block_size=4)
    trace = Trace(np.arange(64), mapping)
    counts = miss_counts(
        {"item": ItemLRU(16, mapping), "block": BlockLRU(16, mapping)}, trace
    )
    assert counts == {"item": 64, "block": 16}


def test_hierarchy_with_adaptive_policy():
    trace = markov_spatial(8000, 512, block_size=8, stay=0.8, seed=1)
    stats = TwoLevelSimulator(
        AdaptiveIBLP(64, trace.mapping), open_rows=2
    ).run(trace)
    assert stats.accesses == 8000
    assert stats.row_activations + stats.row_buffer_hits == stats.l1_misses


def test_hierarchy_with_randomized_policy():
    trace = zipf_items(4000, 512, alpha=1.0, block_size=8, seed=2)
    stats = TwoLevelSimulator(GCM(64, trace.mapping, seed=3)).run(trace)
    assert stats.l1_hits + stats.l1_misses == 4000


def test_writeback_with_adaptive_policy():
    trace = zipf_items(4000, 512, alpha=1.0, block_size=8, seed=4)
    rw = make_rw_trace(trace, 0.4, seed=5)
    stats = WritebackSimulator(AdaptiveIBLP(64, trace.mapping)).run(rw)
    assert stats.writes == int(rw.is_write.sum())
    assert stats.dirty_items_flushed <= stats.writes


def test_simulate_validate_false_matches_validated():
    trace = zipf_items(3000, 256, alpha=0.9, block_size=8, seed=6)
    a = simulate(ItemLRU(32, trace.mapping), trace, validate=True)
    b = simulate(ItemLRU(32, trace.mapping), trace, validate=False)
    assert a.misses == b.misses
    assert a.spatial_hits == b.spatial_hits


def test_sim_result_metadata_copied_from_trace():
    trace = zipf_items(100, 64, block_size=4, seed=7)
    res = simulate(ItemLRU(8, trace.mapping), trace)
    assert res.metadata.get("generator") == "zipf_items"


def test_adaptive_ghosts_bounded():
    mapping = FixedBlockMapping(universe=4096, block_size=8)
    trace = Trace(
        np.random.default_rng(8).integers(0, 4096, 6000, dtype=np.int64),
        mapping,
    )
    policy = AdaptiveIBLP(32, mapping, ghost_factor=0.5)
    simulate(policy, trace)
    assert len(policy._ghost_items) <= policy._ghost_item_cap
    assert len(policy._ghost_blocks) <= policy._ghost_block_cap


@pytest.mark.parametrize("open_rows", [1, 2, 8])
def test_more_open_rows_never_increase_activations(open_rows):
    trace = markov_spatial(5000, 512, block_size=8, stay=0.7, seed=9)
    base = TwoLevelSimulator(ItemLRU(64, trace.mapping), open_rows=1).run(trace)
    more = TwoLevelSimulator(
        ItemLRU(64, trace.mapping), open_rows=open_rows
    ).run(trace)
    assert more.row_activations <= base.row_activations

"""SHARDS sampler properties: determinism, block-closure, rate
monotonicity/calibration, and the rescaled-MRC convergence bounds
documented in docs/traces.md."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mrc import (
    block_lru_stack_distances,
    lru_stack_distances,
    miss_ratio_curve,
    sampled_miss_ratio_curve,
    sampled_spatial_fraction,
)
from repro.core.engine import simulate
from repro.errors import ConfigurationError
from repro.policies import make_policy
from repro.workloads import markov_spatial, sample_trace, shards, zipf_items

_blocks = st.lists(st.integers(0, 2**48), min_size=1, max_size=200)


@given(blocks=_blocks, rate=st.floats(0.01, 1.0), seed=st.integers(0, 2**32))
@settings(max_examples=60, deadline=None)
def test_sampler_deterministic(blocks, rate, seed):
    arr = np.asarray(blocks, dtype=np.int64)
    a = shards(rate, seed).keep_blocks(arr)
    b = shards(rate, seed).keep_blocks(arr)
    assert np.array_equal(a, b)


@given(
    items=st.lists(st.integers(0, 10_000), min_size=1, max_size=200),
    rate=st.floats(0.01, 0.99),
    seed=st.integers(0, 2**16),
    block_size=st.integers(1, 16),
)
@settings(max_examples=60, deadline=None)
def test_sampler_block_closed(items, rate, seed, block_size):
    """Every item of a block shares the keep decision — load sets
    survive sampling intact."""
    arr = np.asarray(items, dtype=np.int64)
    mask = shards(rate, seed).keep_items(arr, block_size)
    decisions = {}
    for item, kept in zip(arr.tolist(), mask.tolist()):
        block = item // block_size
        assert decisions.setdefault(block, kept) == kept


@given(
    blocks=_blocks,
    lo=st.floats(0.05, 0.5),
    hi=st.floats(0.5, 1.0),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=40, deadline=None)
def test_sampler_rate_monotone(blocks, lo, hi, seed):
    """Raising the rate only adds blocks: the same hash is compared to
    a larger threshold, so samples are nested across rates."""
    arr = np.asarray(blocks, dtype=np.int64)
    kept_lo = shards(min(lo, hi), seed).keep_blocks(arr)
    kept_hi = shards(max(lo, hi), seed).keep_blocks(arr)
    assert not (kept_lo & ~kept_hi).any()


def test_sampler_rate_calibrated():
    blocks = np.arange(200_000, dtype=np.int64)
    for rate in (0.01, 0.1, 0.5):
        frac = shards(rate, seed=1).keep_blocks(blocks).mean()
        assert abs(frac - rate) < 0.01


def test_sampler_seeds_decorrelate():
    blocks = np.arange(2000, dtype=np.int64)
    a = shards(0.5, seed=0).keep_blocks(blocks)
    b = shards(0.5, seed=1).keep_blocks(blocks)
    assert (a != b).mean() > 0.25


def test_rate_one_keeps_everything():
    blocks = np.arange(100, dtype=np.int64)
    assert shards(1.0, seed=3).keep_blocks(blocks).all()


def test_bad_rate_rejected():
    for rate in (0.0, -0.1, 1.5):
        with pytest.raises(ConfigurationError, match="sample rate"):
            shards(rate)


def test_sample_trace_provenance():
    trace = markov_spatial(
        length=5000, universe=1024, block_size=8, stay=0.8, seed=2
    )
    sub = sample_trace(trace, 0.2, seed=5)
    assert sub.mapping is trace.mapping
    assert sub.metadata["shards_rate"] == 0.2
    assert sub.metadata["shards_seed"] == 5
    assert sub.metadata["shards_parent_accesses"] == 5000
    assert 0 < len(sub) < 5000


# -- rescaled-MRC convergence ------------------------------------------------


def exact_curves(trace, caps):
    item = dict(miss_ratio_curve(lru_stack_distances(trace.items), caps))
    block_slots = [max(1, k // trace.block_size) for k in caps]
    block = dict(
        miss_ratio_curve(block_lru_stack_distances(trace), block_slots)
    )
    return item, block


def test_markov_mrc_converges_within_documented_bound():
    """docs/traces.md documents <= ~5 points of absolute miss-ratio
    error on evenly-loaded spatial workloads at rates down to 1 %."""
    trace = markov_spatial(
        length=120_000, universe=16_384, block_size=8, stay=0.8, seed=7
    )
    caps = [1024, 4096, 16_384]
    exact_item, exact_block = exact_curves(trace, caps)
    # The estimator variance shrinks with the number of sampled blocks,
    # so the bound tightens as the rate grows (at this trace scale).
    bounds = {0.01: 0.08, 0.05: 0.06, 0.1: 0.06}
    for rate, bound in bounds.items():
        for seed in (0, 1):
            approx = dict(
                sampled_miss_ratio_curve(trace, caps, rate, seed=seed)
            )
            worst = max(abs(approx[k] - exact_item[k]) for k in caps)
            assert worst <= bound, (rate, seed, worst)
            slots = [max(1, k // 8) for k in caps]
            approx_b = dict(
                sampled_miss_ratio_curve(
                    trace, slots, rate, seed=seed, granularity="block"
                )
            )
            worst_b = max(
                abs(approx_b[max(1, k // 8)] - exact_block[max(1, k // 8)])
                for k in caps
            )
            assert worst_b <= bound, (rate, seed, worst_b)


def test_zipf_mrc_converges_at_higher_rate():
    """Skewed block popularity needs higher rates (the documented
    limitation): at 10 % the zipf curve is still within ~12 points."""
    trace = zipf_items(
        length=120_000, universe=16_384, block_size=8, alpha=0.7, seed=9
    )
    caps = [1024, 4096, 16_384]
    exact_item, _ = exact_curves(trace, caps)
    for seed in (0, 1):
        approx = dict(sampled_miss_ratio_curve(trace, caps, 0.1, seed=seed))
        worst = max(abs(approx[k] - exact_item[k]) for k in caps)
        assert worst <= 0.12, (seed, worst)


def test_sampled_spatial_fraction_tracks_exact():
    trace = markov_spatial(
        length=80_000, universe=8192, block_size=8, stay=0.8, seed=4
    )
    exact = simulate(
        make_policy("block-lru", 2048, trace.mapping), trace, fast=True
    ).spatial_fraction
    for seed in (0, 1):
        approx = sampled_spatial_fraction(trace, 2048, 0.1, seed=seed)
        assert abs(approx - exact) <= 0.05, (seed, approx, exact)


def test_sampled_mrc_rejects_bad_granularity():
    trace = markov_spatial(
        length=2000, universe=512, block_size=8, stay=0.8, seed=1
    )
    with pytest.raises(ConfigurationError, match="granularity"):
        sampled_miss_ratio_curve(trace, [64], 0.1, granularity="word")

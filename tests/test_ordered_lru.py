"""OrderedLRU unit tests plus differential testing against LinkedLRU."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.structs.linked_lru import LinkedLRU
from repro.structs.ordered_lru import OrderedLRU


def test_basic_order():
    lru = OrderedLRU()
    for x in (1, 2, 3):
        lru.insert_mru(x)
    assert list(lru) == [3, 2, 1]
    assert list(lru.keys_lru_to_mru()) == [1, 2, 3]


def test_duplicate_raises():
    lru = OrderedLRU()
    lru.insert_mru(1)
    with pytest.raises(KeyError):
        lru.insert_mru(1)


def test_pop_empty_raises():
    lru = OrderedLRU()
    with pytest.raises(KeyError):
        lru.pop_lru()
    with pytest.raises(KeyError):
        lru.mru_key()


def test_set_value_requires_presence():
    lru = OrderedLRU()
    with pytest.raises(KeyError):
        lru.set_value(9, 1)


# -- differential property test ------------------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.integers(0, 9)),
        st.tuples(st.just("touch"), st.integers(0, 9)),
        st.tuples(st.just("demote"), st.integers(0, 9)),
        st.tuples(st.just("remove"), st.integers(0, 9)),
        st.tuples(st.just("pop_lru"), st.just(0)),
        st.tuples(st.just("pop_mru"), st.just(0)),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(_ops)
def test_linked_and_ordered_agree(ops):
    """Any operation sequence yields identical observable state."""
    a, b = LinkedLRU(), OrderedLRU()
    for op, key in ops:
        if op == "insert":
            if key in a:
                continue
            a.insert_mru(key, key * 2)
            b.insert_mru(key, key * 2)
        elif op in ("touch", "demote", "remove"):
            if key not in a:
                continue
            getattr(a, op)(key)
            getattr(b, op)(key)
        elif op in ("pop_lru", "pop_mru"):
            if not a:
                continue
            assert getattr(a, op)() == getattr(b, op)()
        assert len(a) == len(b)
        assert list(a) == list(b)
        assert list(a.keys_lru_to_mru()) == list(b.keys_lru_to_mru())
        if a:
            assert a.lru_key() == b.lru_key()
            assert a.mru_key() == b.mru_key()

"""Cluster replay conformance and the degradation/isolation invariants.

The anchor is **single-shard bit-identity**: an ``n_shards=1`` cluster
— under either hash scheme, fast or referee path — must reproduce the
single-cache :func:`simulate` :class:`SimResult` exactly, across
policy families (item-granularity, granularity-aware, block-
granularity, offline-prepared).  On top of that: exact cross-shard
conservation, the paper-facing monotonicity of spatial degradation
under item-striping (and its *absence* under block-aware hashing), the
JSON interchange round-trip, and the multi-tenant attribution
accounting.
"""

import numpy as np
import pytest

from repro.campaign.runner import result_fields
from repro.cluster import (
    ClusterResult,
    ClusterSpec,
    combine_tenants,
    replay_cluster,
    replay_multitenant,
)
from repro.core.engine import simulate
from repro.errors import ConfigurationError
from repro.policies import make_policy
from repro.workloads import markov_spatial, zipf_items

CAPACITY = 128

#: Policy families: item-granularity, granularity-aware, block-
#: granularity (all fast-kernel-backed), plus referee-only gcm.
POLICIES = ["item-lru", "iblp", "block-fifo", "gcm"]


def spatial_trace(length=8000, universe=1024, seed=5):
    return markov_spatial(
        length=length, universe=universe, block_size=8, stay=0.85, seed=seed
    )


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("scheme", ["block", "item"])
@pytest.mark.parametrize("fast", [True, False])
def test_single_shard_cluster_is_bit_identical_to_simulate(
    policy, scheme, fast
):
    tr = spatial_trace(length=4000, universe=512)
    reference = simulate(
        make_policy(policy, CAPACITY, tr.mapping), tr, fast=fast
    )
    cl = replay_cluster(
        policy, CAPACITY, tr, ClusterSpec(n_shards=1, scheme=scheme), fast=fast
    )
    assert result_fields(cl.sim) == result_fields(reference)
    assert cl.load_imbalance == 1.0
    assert cl.blocks_split == 0


@pytest.mark.parametrize("scheme", ["block", "item", "modulo"])
def test_shard_taxonomies_merge_exactly(scheme):
    tr = spatial_trace()
    cl = replay_cluster(
        "iblp", CAPACITY, tr, ClusterSpec(n_shards=4, scheme=scheme)
    )
    assert len(cl.shards) == 4
    for field in (
        "accesses",
        "misses",
        "temporal_hits",
        "spatial_hits",
        "loaded_items",
        "evicted_items",
    ):
        assert getattr(cl.sim, field) == sum(
            getattr(s, field) for s in cl.shards
        )
    assert cl.sim.accesses == len(tr)
    assert cl.sim.misses + cl.sim.temporal_hits + cl.sim.spatial_hits == len(tr)


def test_item_striping_degrades_spatial_locality_monotonically():
    """The headline invariant: striping a spatial workload across more
    shards strictly erodes the spatial fraction (side-loads land on
    items other shards own), while block-aware hashing preserves it to
    within noise at every shard count."""
    tr = spatial_trace()
    shard_counts = [1, 2, 4, 8, 16]
    striped = [
        replay_cluster(
            "iblp", 256, tr, ClusterSpec(n_shards=n, scheme="item")
        ).sim.spatial_fraction
        for n in shard_counts
    ]
    assert all(a > b for a, b in zip(striped, striped[1:])), striped
    aware = [
        replay_cluster(
            "iblp", 256, tr, ClusterSpec(n_shards=n, scheme="block")
        ).sim.spatial_fraction
        for n in shard_counts
    ]
    assert max(aware) - min(aware) < 0.01, aware
    assert min(aware) > striped[-1]


def test_per_shard_capacity_mode_gives_full_capacity_to_each_shard():
    spec = ClusterSpec(n_shards=4, scheme="block", capacity_mode="per-shard")
    assert spec.shard_capacity(256) == 256
    assert ClusterSpec(n_shards=4, scheme="block").shard_capacity(256) == 64
    tr = spatial_trace(length=4000, universe=512)
    scaled = replay_cluster("iblp", 64, tr, spec)
    split = replay_cluster(
        "iblp", 64, tr, ClusterSpec(n_shards=4, scheme="block")
    )
    assert scaled.sim.miss_ratio <= split.sim.miss_ratio
    with pytest.raises(ConfigurationError):
        ClusterSpec(n_shards=2, capacity_mode="elastic")


def test_cluster_result_round_trips_through_fields():
    tr = spatial_trace(length=4000, universe=512)
    cl = replay_cluster(
        "iblp", CAPACITY, tr, ClusterSpec(n_shards=3, scheme="item")
    )
    back = ClusterResult.from_fields(cl.fields())
    assert back.fields() == cl.fields()
    assert back.n_shards == 3
    assert back.scheme == "item"
    assert back.as_row() == cl.as_row()


def test_combine_tenants_is_deterministic_and_disjoint():
    tenants = {
        "temporal": zipf_items(
            length=3000, universe=512, alpha=1.1, block_size=8, seed=1
        ),
        "spatial": spatial_trace(length=3000, universe=512, seed=2),
    }
    combined, ids, names = combine_tenants(tenants)
    again, ids2, _ = combine_tenants(tenants)
    assert combined.fingerprint() == again.fingerprint()
    np.testing.assert_array_equal(ids, ids2)
    assert names == ["temporal", "spatial"]
    assert len(combined) == 6000
    assert combined.universe == 1024
    # Offsets preserve block boundaries and keep item spaces disjoint.
    assert (combined.items[ids == 0] < 512).all()
    assert (combined.items[ids == 1] >= 512).all()


@pytest.mark.parametrize("mode", ["shared", "static", "per-tenant"])
def test_multitenant_attribution_sums_to_merged(mode):
    tenants = {
        "temporal": zipf_items(
            length=3000, universe=512, alpha=1.1, block_size=8, seed=1
        ),
        "spatial": spatial_trace(length=3000, universe=512, seed=2),
    }
    cl = replay_multitenant(
        tenants,
        mode,
        "item-lru",
        CAPACITY,
        ClusterSpec(n_shards=4, scheme="block"),
        policies={"spatial": "iblp"} if mode == "per-tenant" else None,
    )
    assert set(cl.tenants) == {"temporal", "spatial"}
    for field in ("accesses", "misses", "temporal_hits", "spatial_hits"):
        assert getattr(cl.sim, field) == sum(
            t[field] for t in cl.tenants.values()
        )
    assert cl.sim.metadata["tenancy"] == mode


def test_per_tenant_policy_split_beats_shared_for_the_spatial_tenant():
    """The cache_ext-style argument in one assertion: giving the
    spatial tenant its own granularity-aware policy cuts its miss
    ratio far below what any shared item-LRU pool gives it."""
    tenants = {
        "temporal": zipf_items(
            length=4000, universe=512, alpha=1.1, block_size=8, seed=1
        ),
        "spatial": markov_spatial(
            length=4000, universe=512, block_size=8, stay=0.9, seed=2
        ),
    }
    spec = ClusterSpec(n_shards=4, scheme="block")
    shared = replay_multitenant(tenants, "shared", "item-lru", 128, spec)
    split = replay_multitenant(
        tenants,
        "per-tenant",
        "item-lru",
        128,
        spec,
        policies={"spatial": "iblp"},
    )
    assert (
        split.tenant_miss_ratio("spatial")
        < 0.5 * shared.tenant_miss_ratio("spatial")
    )
    assert split.tenant_spatial_fraction("spatial") > 0.2
    assert shared.tenant_spatial_fraction("spatial") == 0.0


def test_tenant_tag_validation():
    tr = spatial_trace(length=1000, universe=512)
    with pytest.raises(ConfigurationError):
        replay_cluster(
            "item-lru",
            CAPACITY,
            tr,
            ClusterSpec(n_shards=2),
            tenant_ids=np.zeros(5, dtype=np.int64),
            tenant_names=["only"],
        )
    with pytest.raises(ConfigurationError):
        replay_multitenant(
            {"a": tr}, "dynamic", "item-lru", CAPACITY, ClusterSpec(n_shards=2)
        )

"""Single-pass multi-policy replay: correctness, gating, and plumbing.

``multi_policy_replay`` advances many policy kernels over one shared
traversal of a compiled trace.  These tests prove the sharing is
unobservable — every cell bit-identical to its solo referee run, with
chunk size, cell order, duplicate cells, and the internal Mattson
collapse all invisible — and pin the gating (``multi_policy_supported``,
``sweep``'s policy-axis collapse, ``CampaignCache.simulate_many``) plus
the ``fallback_reason`` telemetry satellite.
"""

import numpy as np
import pytest

from repro.core.conformance import assert_multi_policy_conformant
from repro.core.engine import simulate
from repro.core.fast import (
    FAST_POLICY_NAMES,
    fast_fallback_reason,
    fast_simulate,
    multi_policy_replay,
    multi_policy_supported,
)
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies import make_policy
from repro.workloads import hot_and_stream, markov_spatial

CAP = 24


@pytest.fixture(scope="module")
def trace():
    return markov_spatial(2500, universe=128, block_size=8, stay=0.8, seed=33)


@pytest.fixture(scope="module")
def spatial_trace():
    return hot_and_stream(2000, hot_items=16, stream_blocks=32, block_size=8, seed=34)


def _full_matrix(k=CAP):
    cells = [(name, k) for name in FAST_POLICY_NAMES]
    cells.append(("athreshold-lru", k, {"a": 2}))
    cells.append(("iblp", k, {"item_layer_size": k // 4}))
    cells.append(("gcm-partial", k, {"load_count": 4}))
    return cells


# -- correctness -------------------------------------------------------------
def test_full_matrix_is_conformant(trace):
    """Every kernel-covered cell — including kwarg variants — survives
    the full differential harness in one shared traversal."""
    assert_multi_policy_conformant(_full_matrix(), trace)


def test_matches_solo_replays_across_capacities(spatial_trace):
    cells = [
        (name, cap)
        for name in ("item-lru", "gcm", "iblp", "item-2q", "marking-lru")
        for cap in (1, 8, 32)
    ]
    results = multi_policy_replay(cells, spatial_trace)
    for (name, cap), got in zip(cells, results):
        want = simulate(
            make_policy(name, cap, spatial_trace.mapping), spatial_trace
        )
        assert got == want, (name, cap)
        assert got.policy == name and got.capacity == cap


def test_chunk_size_is_invisible(trace):
    cells = _full_matrix()
    want = multi_policy_replay(cells, trace)
    for chunk in (1, 7, 64, 10**9):
        assert multi_policy_replay(cells, trace, chunk=chunk) == want


def test_record_streams_match_fast_simulate(trace):
    cells = [("gcm", CAP), ("item-lfu", CAP), ("iblp-adaptive", CAP)]
    record = {}
    multi_policy_replay(cells, trace, record=record)
    assert sorted(record) == [0, 1, 2]
    for i, (name, cap) in enumerate(cells):
        solo_codes = []
        fast_simulate(
            make_policy(name, cap, trace.mapping), trace, record=solo_codes
        )
        assert record[i] == solo_codes, (name, cap)


def test_duplicate_cells_get_independent_results(trace):
    # Duplicates exercise both engines: item-lru pairs collapse through
    # the Mattson pass (clone path), gcm pairs through twin steppers.
    cells = [("item-lru", 8), ("item-lru", 8), ("gcm", 8), ("gcm", 8)]
    results = multi_policy_replay(cells, trace)
    assert results[0] == results[1]
    assert results[2] == results[3]
    assert results[0] is not results[1]
    assert results[2] is not results[3]
    results[0].metadata["tag"] = "mine"
    assert "tag" not in results[1].metadata


def test_internal_mattson_collapse_is_invisible(trace):
    """Kwarg-free stack-policy groups ride the multi-capacity pass;
    their rows must still match solo replays exactly."""
    cells = [
        ("item-lru", 4),
        ("item-lru", 16),
        ("block-lru", 8),
        ("block-lru", 32),
        ("item-clock", 16),
    ]
    record = {}
    results = multi_policy_replay(cells, trace, record=record)
    for i, (name, cap) in enumerate(cells):
        codes = []
        want = fast_simulate(
            make_policy(name, cap, trace.mapping), trace, record=codes
        )
        assert results[i] == want, (name, cap)
        assert record[i] == codes, (name, cap)


def test_empty_cells_return_empty():
    mapping = FixedBlockMapping(16, 4)
    trace = Trace(np.arange(8, dtype=np.int64), mapping)
    assert multi_policy_replay([], trace) == []


def test_dict_cells_are_accepted(trace):
    cells = [
        {"policy": "gcm", "capacity": CAP, "seed": 5},
        {"policy": "item-lru", "capacity": CAP},
    ]
    results = multi_policy_replay(cells, trace)
    want = simulate(make_policy("gcm", CAP, trace.mapping, seed=5), trace)
    assert results[0] == want


# -- gating ------------------------------------------------------------------
def test_supported_rejects_kernel_less_and_invalid_cells(trace):
    assert multi_policy_supported([("item-lru", 4), ("gcm", 4)], trace)
    assert not multi_policy_supported([("belady-item", 4)], trace)
    assert not multi_policy_supported([("no-such-policy", 4)], trace)
    assert not multi_policy_supported([("item-lru", 0)], trace)
    assert not multi_policy_supported([("item-lru", True)], trace)
    assert not multi_policy_supported([("item-lru", 4.0)], trace)
    assert not multi_policy_supported([("item-lru",)], trace)


def test_unsupported_cell_raises_configuration_error(trace):
    with pytest.raises(ConfigurationError, match="belady-item"):
        multi_policy_replay([("item-lru", 4), ("belady-item", 4)], trace)


# -- sweep collapse ----------------------------------------------------------
def test_sweep_policy_collapse_rows_are_bit_identical(trace):
    from repro.analysis.sweep import grid, simulate_cell, sweep

    cells = grid(
        policy=["item-lru", "gcm", "iblp", "item-lfu", "item-mru"],
        capacity=[8, 24],
        trace=[trace],
    )
    auto = sweep(simulate_cell, cells)
    never = sweep(simulate_cell, cells, batch="never")
    assert len(auto) == len(never) == len(cells)
    for a, n in zip(auto, never):
        for key in ("policy", "capacity", "misses", "temporal_hits",
                    "spatial_hits", "miss_ratio"):
            assert a[key] == n[key], (key, a, n)


def test_sweep_collapses_policy_axis_into_one_traversal(trace, monkeypatch):
    """batch="auto" routes eligible cells through multi_policy_replay
    (one call per trace group) and never calls the per-cell worker."""
    import sys

    from repro.analysis.sweep import grid, simulate_cell, sweep
    from repro.core import fast

    # ``repro.analysis``'s package attribute ``sweep`` is the function,
    # so ``import repro.analysis.sweep`` would resolve to it; take the
    # module itself.
    sweep_mod = sys.modules["repro.analysis.sweep"]

    calls = []
    real = fast.multi_policy_replay

    def spy(cells, t, record=None, chunk=fast.MULTI_POLICY_CHUNK):
        calls.append(list(cells))
        return real(cells, t, record=record, chunk=chunk)

    monkeypatch.setattr(fast, "multi_policy_replay", spy)

    def boom(**kwargs):  # pragma: no cover - must never run
        raise AssertionError("per-cell worker ran despite full collapse")

    cells = grid(policy=["gcm", "item-2q", "marking-lru"],
                 capacity=[8, 24], trace=[trace])
    monkeypatch.setattr(sweep_mod, "_call", boom)
    rows = sweep(simulate_cell, cells)
    assert len(calls) == 1 and len(calls[0]) == 6
    assert [r["policy"] for r in rows] == [c["policy"] for c in cells]


def test_sweep_leaves_ineligible_cells_to_per_cell_replay(trace, monkeypatch):
    """Extra cell keys, fast=False, or kernel-less policies opt out of
    the collapse but still compute (per-cell path)."""
    from repro.analysis.sweep import simulate_cell, sweep
    from repro.core import fast

    calls = []
    real = fast.multi_policy_replay

    def spy(cells, t, record=None, chunk=fast.MULTI_POLICY_CHUNK):
        calls.append(list(cells))
        return real(cells, t, record=record, chunk=chunk)

    monkeypatch.setattr(fast, "multi_policy_replay", spy)
    cells = [
        {"policy": "gcm", "capacity": 8, "trace": trace, "seed": 5},  # extra key
        {"policy": "gcm", "capacity": 8, "trace": trace, "fast": False},
        {"policy": "belady-item", "capacity": 8, "trace": trace},
        {"policy": "item-lfu", "capacity": 8, "trace": trace},  # lone cell
    ]
    rows = sweep(simulate_cell, cells)
    assert not calls  # nothing eligible to group (single survivor)
    assert len(rows) == 4
    want = simulate(make_policy("gcm", 8, trace.mapping, seed=5), trace)
    assert rows[0]["misses"] == want.misses


# -- campaign batching -------------------------------------------------------
def test_campaign_simulate_many_memoizes_per_cell(trace, tmp_path):
    from repro.campaign.integrate import CampaignCache

    cells = [("item-lru", 8), ("gcm", 8), ("iblp", 8, {"item_layer_size": 4})]
    with CampaignCache(tmp_path) as cache:
        first = cache.simulate_many(cells, trace)
        assert cache.computed == 3 and cache.hits == 0
        # Batch-computed cells are visible to later per-cell lookups...
        again = cache.simulate(
            "iblp", 8, trace, fast=True, item_layer_size=4
        )
        assert cache.hits == 1 and again == first[2]
    with CampaignCache(tmp_path) as cache:
        # ...and to a fresh cache over the same store.
        second = cache.simulate_many(cells, trace)
        assert cache.hits == 3 and cache.computed == 0
        assert second == first
    for cell, got in zip(cells, first):
        kwargs = cell[2] if len(cell) == 3 else {}
        want = simulate(
            make_policy(cell[0], cell[1], trace.mapping, **kwargs), trace
        )
        assert got == want, cell


def test_campaign_simulate_many_falls_back_per_cell(trace, tmp_path):
    """A kernel-less cell in the batch degrades to per-cell simulate
    (still memoized) instead of raising."""
    from repro.campaign.integrate import CampaignCache

    cells = [("item-lru", 8), ("belady-item", 8)]
    with CampaignCache(tmp_path) as cache:
        results = cache.simulate_many(cells, trace)
        assert cache.computed == 2
    want = simulate(make_policy("belady-item", 8, trace.mapping), trace)
    assert results[1] == want


# -- fallback_reason telemetry ----------------------------------------------
def test_fallback_reason_surfaces_on_simresult(trace):
    mapping = trace.mapping
    # fast path ran: no reason.
    assert simulate(
        make_policy("item-lru", 8, mapping), trace, fast=True
    ).fallback_reason is None
    # fast not requested: no reason either.
    assert simulate(
        make_policy("belady-item", 8, mapping), trace
    ).fallback_reason is None
    assert simulate(
        make_policy("belady-item", 8, mapping), trace, fast=True
    ).fallback_reason == "unsupported-policy"
    assert simulate(
        make_policy("item-lru", 8, mapping),
        trace,
        fast=True,
        on_access=lambda *a: None,
    ).fallback_reason == "observed"
    # Warm policy: warmed on an item outside the (tiny) trace, so the
    # referee's shadow state stays consistent while the kernel refuses.
    small = Trace(np.array([0, 1, 0, 1]), FixedBlockMapping(16, 4))
    warm = make_policy("item-lru", 8, small.mapping)
    warm.access(9)
    assert fast_fallback_reason(warm, small) == "warm-policy"
    assert simulate(warm, small, fast=True).fallback_reason == "warm-policy"


def test_fallback_reason_mapping_mismatch(trace):
    other = FixedBlockMapping(trace.mapping.universe, trace.mapping.max_block_size)
    # Same geometry but a different partition object is fine; a
    # different block size is not.
    coarser = FixedBlockMapping(trace.mapping.universe, 2)
    policy = make_policy("item-lru", 8, coarser)
    assert fast_fallback_reason(policy, trace) == "mapping-mismatch"
    assert fast_fallback_reason(make_policy("item-lru", 8, other), trace) is None


def test_fallback_reason_rides_rows_and_campaign_store(trace, tmp_path):
    from repro.campaign.runner import result_fields, result_from_fields

    res = simulate(make_policy("belady-item", 8, trace.mapping), trace, fast=True)
    assert res.as_row()["fallback_reason"] == "unsupported-policy"
    assert result_from_fields(result_fields(res)).fallback_reason == (
        "unsupported-policy"
    )
    clean = simulate(make_policy("item-lru", 8, trace.mapping), trace, fast=True)
    assert "fallback_reason" not in clean.as_row()
    assert "fallback_reason" not in result_fields(clean)
    # compare=False: the reason never breaks referee/fast equality.
    assert res == simulate(make_policy("belady-item", 8, trace.mapping), trace)


def test_fallback_emits_span(trace, tmp_path):
    import json

    from repro.telemetry import spans

    path = tmp_path / "spans.jsonl"
    spans.enable(path)
    try:
        simulate(
            make_policy("belady-item", 8, trace.mapping), trace, fast=True
        )
    finally:
        spans.disable()
    events = [json.loads(line) for line in path.read_text().splitlines()]
    fallback = [e for e in events if e.get("name") == "fast.fallback"]
    assert fallback, events
    assert fallback[0]["attrs"]["reason"] == "unsupported-policy"

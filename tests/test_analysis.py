"""Analysis package tests: LP numerics, sweeps, tables, plots."""

import math

import pytest

from repro.analysis import (
    format_table,
    grid,
    line_plot,
    simulate_cell,
    sweep,
    thm5_numeric,
    thm6_numeric,
    thm7_numeric,
    write_csv,
)
from repro.analysis.competitive import measure_adversarial, ratio_on_trace
from repro.analysis.lp import space_cost
from repro.adversary import ItemCacheAdversary
from repro.bounds import (
    iblp_block_layer_upper,
    iblp_item_layer_upper,
    iblp_ratio,
    item_cache_lower,
)
from repro.errors import ConfigurationError
from repro.experiments.figure5 import paper_interior_r
from repro.policies import ItemLRU
from repro.workloads import uniform_random


class TestLP:
    def test_space_cost_triangle(self):
        # U(t) = t + (b/B + 1) t(t-1)/2
        assert space_cost(1, 100, 10) == 1
        assert space_cost(3, 100, 10) == pytest.approx(3 + 11 * 3)

    def test_space_cost_rejects_t_below_one(self):
        with pytest.raises(ConfigurationError):
            space_cost(0, 10, 10)

    def test_thm5_matches_closed_form(self):
        for i, h in ((100, 20), (500, 499), (64, 8)):
            assert thm5_numeric(i, h).ratio == pytest.approx(
                iblp_item_layer_upper(i, h), rel=1e-9
            )

    def test_thm5_infinite_when_i_le_h(self):
        assert math.isinf(thm5_numeric(10, 10).ratio)

    def test_thm6_matches_closed_form(self):
        B = 16.0
        for b, h in ((200, 50), (100, 80), (1000, 30)):
            assert thm6_numeric(b, h, B).ratio == pytest.approx(
                iblp_block_layer_upper(b, h, B), rel=0.01
            )

    def test_thm6_capped_at_b(self):
        B = 8.0
        assert thm6_numeric(10, 10**6, B).ratio <= B + 1e-6

    def test_thm7_closed_form_is_upper_bound(self):
        B = 16.0
        for i, b, h in ((200, 200, 50), (500, 100, 80), (64, 64, 20)):
            lp = thm7_numeric(i, b, h, B)
            assert lp.ratio <= iblp_ratio(i, b, h, B) * (1 + 1e-6)

    def test_thm7_tight_when_interior_r_feasible(self):
        B = 16.0
        i, b, h = 100.0, 1000.0, 60.0
        assert paper_interior_r(i, b, h, B) > 0
        lp = thm7_numeric(i, b, h, B)
        assert lp.ratio == pytest.approx(iblp_ratio(i, b, h, B), rel=0.01)

    def test_thm7_dominates_single_locality_programs(self):
        B = 8.0
        i, b, h = 300.0, 300.0, 40.0
        combined = thm7_numeric(i, b, h, B).ratio
        assert combined >= thm5_numeric(i, h).ratio - 1e-9
        assert combined >= thm6_numeric(b, h, B).ratio - 1e-2


class TestSweep:
    def test_grid_product(self):
        cells = grid(a=[1, 2], b=["x"])
        assert cells == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]

    def test_grid_empty(self):
        assert grid() == [{}]

    def test_sweep_serial(self):
        rows = sweep(lambda a: {"double": 2 * a}, grid(a=[1, 2, 3]))
        assert [r["double"] for r in rows] == [2, 4, 6]
        assert rows[0]["a"] == 1  # cell params echoed

    def test_sweep_parallel_matches_serial(self):
        cells = grid(a=list(range(6)))
        serial = sweep(_square, cells, parallel=False)
        parallel = sweep(_square, cells, parallel=True, max_workers=2)
        assert serial == parallel

    def test_sweep_empty(self):
        assert sweep(_square, []) == []

    def test_sweep_parallel_fast_matches_serial_referee(self):
        """Regression: a parallel sweep on the fast kernels is
        bit-identical to a serial sweep through the validating referee
        — same rows, same order, every SimResult column equal."""
        trace = uniform_random(1500, universe=128, block_size=4, seed=3)
        cells = grid(
            policy=["item-lru", "item-fifo", "block-lru", "iblp"],
            capacity=[16, 64],
            trace=[trace],
        )
        referee = sweep(
            simulate_cell,
            [dict(c, fast=False) for c in cells],
            parallel=False,
        )
        fast = sweep(
            simulate_cell,
            [dict(c, fast=True) for c in cells],
            parallel=True,
            max_workers=2,
        )
        assert len(referee) == len(fast) == len(cells)
        for ref_row, fast_row in zip(referee, fast):
            for row in (ref_row, fast_row):
                row.pop("trace")  # echoed Trace: identity differs across rows
                row.pop("fast")
            assert ref_row == fast_row


    def test_parallel_worker_error_names_cell(self):
        """A parallel worker exception re-raises as SweepCellError
        with the failing cell's kwargs in the message and attached."""
        from repro.errors import SweepCellError

        cells = grid(a=[1, 0, 2])
        with pytest.raises(SweepCellError) as excinfo:
            sweep(_reciprocal, cells, parallel=True, max_workers=2)
        message = str(excinfo.value)
        assert "'a': 0" in message  # the cell params are in the message
        assert "ZeroDivisionError" in message
        assert excinfo.value.cell == {"a": 0}
        assert isinstance(excinfo.value.__cause__, ZeroDivisionError)

    def test_cell_seconds_excludes_finalize_cost(self):
        """Timing guarantee: cell_seconds brackets the cell body only,
        not the recorder flattening (which runs finalize/sink flush)."""
        rows = sweep(_slow_finalize_cell, grid(x=[1]), timing=True)
        # The cell body is ~instant; a finalize that sleeps 0.2s must
        # not leak into the measurement.
        assert rows[0]["cell_seconds"] < 0.1
        assert rows[0]["telemetry_accesses"] == 0  # recorder flattened


def _reciprocal(a):
    return {"r": 1 / a}


class _SlowCloseSink:
    def emit(self, record):
        pass

    def close(self):
        import time

        time.sleep(0.2)


def _slow_finalize_cell(x):
    from repro.telemetry import Recorder

    return {"value": x, "telemetry": Recorder(sinks=[_SlowCloseSink()])}


def _square(a):
    return {"sq": a * a}


class TestTables:
    def test_format_basic(self):
        text = format_table([{"x": 1, "y": 2.5}, {"x": 10}])
        assert "x" in text and "y" in text
        assert "10" in text

    def test_format_handles_inf_nan(self):
        text = format_table([{"v": float("inf")}, {"v": float("nan")}])
        assert "inf" in text and "nan" in text

    def test_format_title_and_columns(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"], title="T")
        assert text.startswith("T")
        assert "a" not in text.splitlines()[1]

    def test_write_csv_roundtrip(self, tmp_path):
        import csv

        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        path = write_csv(rows, tmp_path / "out" / "rows.csv")
        with path.open() as fh:
            back = list(csv.DictReader(fh))
        assert back[0]["a"] == "1"
        assert back[1]["b"] == "y"


class TestAsciiPlot:
    def test_plot_contains_glyphs_and_legend(self):
        text = line_plot(
            {"up": ([1, 10, 100], [1, 10, 100])},
            width=40,
            height=10,
            title="demo",
        )
        assert "demo" in text
        assert "o=up" in text

    def test_plot_skips_nonpositive_on_log(self):
        text = line_plot({"s": ([0, 1, 2], [1, -1, 3])})
        assert "(no finite data to plot)" not in text  # (2,3) survives

    def test_plot_empty(self):
        assert "no finite data" in line_plot({"s": ([], [])})


class TestCompetitive:
    def test_measure_adversarial_row(self):
        k, h, B = 64, 24, 4
        adv = ItemCacheAdversary(k, h, B)
        m = measure_adversarial(adv, lambda mp: ItemLRU(k, mp), cycles=3)
        row = m.as_row()
        assert row["ratio_vs_claimed"] == pytest.approx(
            item_cache_lower(k, h, B), rel=0.1
        )

    def test_bracket_certifies(self):
        k, h, B = 64, 24, 4
        adv = ItemCacheAdversary(k, h, B)
        m = measure_adversarial(
            adv, lambda mp: ItemLRU(k, mp), cycles=3, bracket_opt=True
        )
        assert m.opt_lower <= m.opt_upper
        assert m.ratio_vs_bracket >= 1.0

    def test_ratio_on_trace(self):
        trace = uniform_random(2000, universe=256, block_size=4, seed=1)
        row = ratio_on_trace(ItemLRU(64, trace.mapping), trace, h=32)
        assert row["opt_lower"] <= row["opt_upper"]
        assert row["ratio_min"] <= row["ratio_max"]
        assert row["ratio_min"] > 0

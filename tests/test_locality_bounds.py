"""Locality-model bound tests (Theorems 8-11, Table 2)."""

import math

import pytest

from repro.bounds.locality import (
    LocalityBounds,
    block_layer_fault_upper,
    fault_rate_lower,
    gap_vs_baseline,
    iblp_fault_rate_upper,
    item_layer_fault_upper,
    table2_asymptotics,
)
from repro.errors import ConfigurationError
from repro.locality.functions import PolynomialLocality


def _family(p=2.0, gamma=1.0):
    return PolynomialLocality(p=p, gamma=gamma).to_bounds()


class TestTheorem8:
    def test_formula_sqrt_family(self):
        loc = _family(p=2.0, gamma=1.0)
        k = 100.0
        window = (k + 1) ** 2 - 2
        assert fault_rate_lower(loc, k) == pytest.approx(
            math.sqrt(window) / window
        )

    def test_spatial_locality_lowers_bound(self):
        k = 64.0
        no_spatial = fault_rate_lower(_family(gamma=1.0), k)
        spatial = fault_rate_lower(_family(gamma=8.0), k)
        assert spatial < no_spatial
        assert spatial == pytest.approx(no_spatial / 8.0, rel=1e-6)

    def test_clamped_to_one(self):
        # f(n) = n: no locality at all.
        loc = LocalityBounds(f=lambda n: n, g=lambda n: n)
        assert fault_rate_lower(loc, 5) == 1.0

    def test_rejects_bad_cache(self):
        with pytest.raises(ConfigurationError):
            fault_rate_lower(_family(), 0)


class TestTheorem9And10:
    def test_item_layer_formula(self):
        loc = _family(p=2.0)
        i = 50.0
        assert item_layer_fault_upper(loc, i) == pytest.approx(
            (i - 1) / ((i + 1) ** 2 - 2)
        )

    def test_block_layer_uses_g_inverse(self):
        B = 4.0
        loc = _family(p=2.0, gamma=B)  # g(n) = sqrt(n)/B
        b = 64.0
        eff = b / B
        window = ((eff + 1) * B) ** 2 - 2
        assert block_layer_fault_upper(loc, b, B) == pytest.approx(
            (eff - 1) / window
        )

    def test_block_layer_saturates_when_tiny(self):
        loc = _family()
        assert block_layer_fault_upper(loc, 4.0, 8.0) == 1.0

    def test_theorem11_is_min(self):
        loc = _family(p=2.0, gamma=2.0)
        i, b, B = 128.0, 128.0, 8.0
        assert iblp_fault_rate_upper(loc, i, b, B) == min(
            item_layer_fault_upper(loc, i),
            block_layer_fault_upper(loc, b, B),
        )


class TestTable2:
    @pytest.mark.parametrize("p", [2.0, 3.0, 4.0])
    @pytest.mark.parametrize("B", [8.0, 64.0])
    def test_asymptotic_coefficients(self, p, B):
        rows = table2_asymptotics(p=p, B=B)
        by_label = {r["label"]: r for r in rows}
        # gamma = 1: LB 1/h^{p-1}, block layer B^{p-1}/b^{p-1}.
        assert by_label["no_spatial"]["lower_bound_coeff"] == pytest.approx(1.0)
        assert by_label["no_spatial"]["block_layer_coeff"] == pytest.approx(
            B ** (p - 1)
        )
        # gamma = B^{1-1/p}: block layer coefficient becomes 1.
        assert by_label["high_spatial"]["block_layer_coeff"] == pytest.approx(
            1.0
        )
        # gamma = B: LB 1/(B h^{p-1}), block layer 1/(B b^{p-1}).
        assert by_label["max_spatial"]["lower_bound_coeff"] == pytest.approx(
            1.0 / B
        )
        assert by_label["max_spatial"]["block_layer_coeff"] == pytest.approx(
            1.0 / B
        )
        # Item layer is always 1/i^{p-1}.
        for row in rows:
            assert row["item_layer_coeff"] == pytest.approx(1.0)

    def test_finite_size_bounds_converge_to_coefficients(self):
        """Exact Thm 8-10 values approach the Table 2 asymptotics."""
        p, B = 2.0, 16.0
        i = b = 2.0**16
        h = i + b
        for label, gamma in (
            ("no_spatial", 1.0),
            ("max_spatial", B),
        ):
            loc = PolynomialLocality(p=p, gamma=gamma).to_bounds()
            lb = fault_rate_lower(loc, h)
            expected = (1.0 / gamma) / h ** (p - 1)
            assert lb == pytest.approx(expected, rel=0.05)

    def test_worst_gap_value(self):
        assert gap_vs_baseline(2.0, 64.0) == pytest.approx(8.0)
        assert gap_vs_baseline(4.0, 16.0) == pytest.approx(16.0 ** 0.75)

    def test_gap_approaches_b_for_large_p(self):
        assert gap_vs_baseline(1000.0, 64.0) == pytest.approx(64.0, rel=0.05)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            table2_asymptotics(p=0.5, B=8)
        with pytest.raises(ConfigurationError):
            gap_vs_baseline(2.0, 0.5)


class TestNumericInverseFallback:
    def test_fallback_matches_exact(self):
        fam = PolynomialLocality(p=2.0, gamma=2.0)
        no_inverse = LocalityBounds(f=fam.f, g=fam.g)
        assert no_inverse.finv(50.0) == pytest.approx(
            fam.f_inverse(50.0), rel=1e-6
        )
        assert no_inverse.ginv(10.0) == pytest.approx(
            fam.g_inverse(10.0), rel=1e-6
        )

"""Cluster cells through the campaign layer.

Pins four things:

* **Legacy hash stability** — adding the ``cluster`` key to
  :func:`cell_hash` must not move any existing content address (old
  stores stay valid), while any cluster dict change moves the hash.
* **Grid axis** — ``from_grid(clusters=...)`` sweeps shard count ×
  scheme like any other axis and round-trips through JSON.
* **Zero-recompute resume** — the satellite-2 regression: re-running a
  memoized cluster experiment against the same campaign directory
  recomputes nothing, because sub-trace fingerprints derive from the
  parent fingerprint (no payload rehash) and the cell addresses are
  deterministic.
* **Board labels** — cluster cells identify themselves on the
  status/watch boards via :meth:`CellSpec.mode_label`.
"""

from repro.campaign import CampaignCache, CampaignSpec, TraceSpec
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CellSpec, cell_hash
from repro.cluster import ClusterSpec
from repro.experiments import isolation, spatial_degradation

FP = "f" * 64


def test_cluster_key_does_not_move_legacy_hashes():
    legacy = cell_hash(policy="iblp", capacity=128, trace_fingerprint=FP)
    assert cell_hash(
        policy="iblp", capacity=128, trace_fingerprint=FP, cluster=None
    ) == legacy
    clustered = cell_hash(
        policy="iblp",
        capacity=128,
        trace_fingerprint=FP,
        cluster=ClusterSpec(n_shards=4).as_dict(),
    )
    assert clustered != legacy
    # Every cluster knob moves the address.
    seen = {clustered}
    for spec in (
        ClusterSpec(n_shards=8),
        ClusterSpec(n_shards=4, scheme="item"),
        ClusterSpec(n_shards=4, hash_seed=1),
        ClusterSpec(n_shards=4, vnodes=32),
        ClusterSpec(n_shards=4, capacity_mode="per-shard"),
    ):
        h = cell_hash(
            policy="iblp",
            capacity=128,
            trace_fingerprint=FP,
            cluster=spec.as_dict(),
        )
        assert h not in seen
        seen.add(h)


def test_from_grid_sweeps_cluster_axis_and_round_trips():
    traces = {
        "markov": TraceSpec(
            kind="workload",
            name="markov",
            params={
                "length": 2000,
                "universe": 256,
                "block_size": 8,
                "stay": 0.85,
                "seed": 1,
            },
        )
    }
    clusters = [
        ClusterSpec(n_shards=n, scheme=s).as_dict()
        for s in ("block", "item")
        for n in (2, 4)
    ]
    spec = CampaignSpec.from_grid(
        "cluster-grid",
        policies=["item-lru", "iblp"],
        capacities=[64],
        traces=traces,
        clusters=clusters,
    )
    assert len(spec.cells) == 2 * 1 * 1 * 4
    assert all(cell.cluster is not None for cell in spec.cells)
    back = CampaignSpec.from_dict(spec.as_dict())
    assert [c.as_dict() for c in back.cells] == [
        c.as_dict() for c in spec.cells
    ]
    labels = {cell.mode_label() for cell in spec.cells}
    assert labels == {
        "cluster[2×block]",
        "cluster[4×block]",
        "cluster[2×item]",
        "cluster[4×item]",
    }


def test_campaign_runner_executes_and_memoizes_cluster_cells(tmp_path):
    traces = {
        "markov": TraceSpec(
            kind="workload",
            name="markov",
            params={
                "length": 2000,
                "universe": 256,
                "block_size": 8,
                "stay": 0.85,
                "seed": 1,
            },
        )
    }
    spec = CampaignSpec.from_grid(
        "cluster-run",
        policies=["iblp"],
        capacities=[64],
        traces=traces,
        clusters=[ClusterSpec(n_shards=2).as_dict()],
    )
    with CampaignRunner(tmp_path, spec, store_sync=False) as runner:
        first = runner.run()
    assert first.computed == 1 and first.failures == 0 and first.complete
    with CampaignRunner(tmp_path, spec, store_sync=False) as runner:
        resumed = runner.run()
    assert resumed.memo_hits == 1 and resumed.computed == 0


def test_spatial_experiment_resumes_with_zero_recomputes(tmp_path):
    trace = spatial_degradation.default_trace(length=2000, universe=256)
    kwargs = dict(
        capacity=64, shards=(1, 2), schemes=("block", "item"), trace=trace
    )
    with CampaignCache(tmp_path) as cache:
        rows = spatial_degradation.run(cache=cache, **kwargs)
        assert cache.computed == len(rows) and cache.hits == 0
    with CampaignCache(tmp_path) as cache:
        again = spatial_degradation.run(cache=cache, **kwargs)
        assert cache.computed == 0, "resume recomputed a memoized cell"
        assert cache.hits == len(rows)
    assert again == rows


def test_isolation_experiment_resumes_with_zero_recomputes(tmp_path):
    tenants = isolation.default_tenants(length=1500, universe=256)
    kwargs = dict(capacity=64, n_shards=2, tenants=tenants)
    with CampaignCache(tmp_path) as cache:
        rows = isolation.run(cache=cache, **kwargs)
        assert cache.computed == len(rows) == 4
    with CampaignCache(tmp_path) as cache:
        again = isolation.run(cache=cache, **kwargs)
        assert cache.computed == 0 and cache.hits == 4
    assert again == rows


def test_mode_label_composition():
    base = dict(
        policy="iblp", capacity=64, trace="t", fast=True, policy_kwargs={}
    )
    assert CellSpec(**base).mode_label() == "offline"
    cl = ClusterSpec(n_shards=4, scheme="item").as_dict()
    assert CellSpec(**base, cluster=cl).mode_label() == "cluster[4×item]"
    serving = {"arrival": {"process": "poisson", "rate": 0.01}}
    assert (
        CellSpec(**base, cluster=cl, serving=serving).mode_label()
        == "cluster[4×item]+serving"
    )
    assert CellSpec(**base, serving=serving).mode_label() == "serving"

"""2Q item policy tests."""

import numpy as np
import pytest

from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.policies import ItemLRU, ItemTwoQ
from repro.workloads import hot_and_stream


@pytest.fixture
def mapping():
    return FixedBlockMapping(universe=512, block_size=8)


def test_new_items_enter_probation(mapping):
    p = ItemTwoQ(8, mapping)
    p.access(0)
    assert 0 in p.probation_items()
    assert 0 not in p.protected_items()


def test_ghost_readmission_promotes(mapping):
    p = ItemTwoQ(4, mapping)  # probation cap 1
    p.access(0)
    p.access(8)
    p.access(16)
    p.access(24)
    p.access(32)  # forces evictions from probation into ghosts
    evicted_ghosts = [0, 8, 16, 24, 32]
    # Re-access something that left probation recently.
    target = next(g for g in evicted_ghosts if not p.contains(g))
    p.access(target)
    assert target in p.protected_items()


def test_scan_resistance():
    """Repeated one-touch scans must not wipe the protected hot set.

    LRU re-pays the hot set after every scan; 2Q pays a one-off
    promotion cost (each hot item misses twice: admission + ghost
    readmission) and then rides out every scan in Am.
    """
    mapping = FixedBlockMapping(universe=4096, block_size=8)
    k = 64
    rng = np.random.default_rng(0)
    hot = [i * 8 for i in range(16)]
    accesses = []
    # Build-up with background churn so probation cycles and promotes.
    for _ in range(40):
        for h in hot:
            accesses.append(h)
            accesses.append(int(rng.integers(2048, 4096)))
    for _ in range(5):  # scan/hot cycles: LRU re-pays, 2Q does not
        accesses.extend(range(1024, 1024 + 256))
        for _ in range(4):
            accesses.extend(hot)
    trace = Trace(np.asarray(accesses, dtype=np.int64), mapping)
    twoq = simulate(ItemTwoQ(k, mapping), trace).misses
    lru = simulate(ItemLRU(k, mapping), trace).misses
    assert twoq <= lru - 4 * 16  # saves the hot refill on later cycles


def test_referee_validated(mapping):
    trace = Trace(
        np.random.default_rng(1).integers(0, 512, 3000, dtype=np.int64),
        mapping,
    )
    res = simulate(ItemTwoQ(32, mapping), trace, cross_check_every=101)
    assert res.accesses == 3000


def test_no_spatial_hits(mapping):
    trace = Trace(np.arange(512), mapping)
    res = simulate(ItemTwoQ(64, mapping), trace)
    assert res.spatial_hits == 0
    assert res.misses == 512


def test_theorem2_applies():
    """2Q is an Item Cache: the Theorem 2 adversary pins it too."""
    from repro.adversary import ItemCacheAdversary
    from repro.bounds import item_cache_lower

    k, h, B = 128, 32, 8
    adv = ItemCacheAdversary(k, h, B)
    mapping = adv.make_mapping(3)
    run = adv.run(ItemTwoQ(k, mapping), cycles=3)
    assert run.empirical_ratio >= item_cache_lower(k, h, B) * 0.9


def test_reset(mapping):
    p = ItemTwoQ(8, mapping, probation_fraction=0.5)
    p.access(0)
    p.reset()
    assert not p.contains(0)
    assert p.probation_fraction == 0.5

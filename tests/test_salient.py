"""Table 1 salient-point tests."""

import math

import pytest

from repro.bounds.salient import (
    BOUND_FAMILIES,
    k_for_ratio,
    meeting_point,
    paper_predictions,
    table1_rows,
)
from repro.errors import ConfigurationError, SolverError


def test_meeting_point_sleator_tarjan():
    """ST: ratio == augmentation exactly at k = 2h (both equal 2)."""
    h = 1000.0
    k = meeting_point(BOUND_FAMILIES["sleator_tarjan"], h, 64.0)
    assert k / h == pytest.approx(2.0, rel=1e-2)


def test_meeting_point_gc_lower_near_sqrt_b():
    h, B = 10_000.0, 64.0
    k = meeting_point(BOUND_FAMILIES["gc_lower"], h, B)
    assert k / h == pytest.approx(math.sqrt(B), rel=0.2)


def test_meeting_point_gc_upper_near_sqrt_2b():
    h, B = 10_000.0, 64.0
    k = meeting_point(BOUND_FAMILIES["gc_upper"], h, B)
    assert k / h == pytest.approx(math.sqrt(2 * B), rel=0.2)


def test_k_for_ratio_gc_lower_reaches_2_near_bh():
    h, B = 10_000.0, 64.0
    k = k_for_ratio(BOUND_FAMILIES["gc_lower"], h, B, target=2.02)
    assert k / h == pytest.approx(B, rel=0.05)


def test_k_for_ratio_gc_upper_reaches_3_near_bh():
    h, B = 10_000.0, 64.0
    k = k_for_ratio(BOUND_FAMILIES["gc_upper"], h, B, target=3.1)
    assert k / h == pytest.approx(B, rel=0.15)


def test_k_for_ratio_rejects_target_below_one():
    with pytest.raises(ConfigurationError):
        k_for_ratio(BOUND_FAMILIES["gc_lower"], 100.0, 8.0, target=0.5)


def test_k_for_ratio_unreachable_raises():
    with pytest.raises(SolverError):
        # GC lower bound can't reach 1.01 within the default k range.
        k_for_ratio(BOUND_FAMILIES["gc_lower"], 10_000.0, 64.0, target=1.01)


def test_table1_matches_paper_within_tolerance():
    """All nine cells land near the paper's approximate values."""
    B = 64.0
    rows = {r["setting"]: r for r in table1_rows(h=10_000.0, B=B)}
    paper = paper_predictions(B)
    # Constant augmentation: ratios ~ {2, B, 2B}.
    row = rows["constant_augmentation"]
    for fam in ("sleator_tarjan", "gc_lower", "gc_upper"):
        assert row[f"{fam}_ratio"] == pytest.approx(
            paper["constant_augmentation"][fam], rel=0.05
        )
    # Meeting point: augmentation ~ {2, sqrt(B), sqrt(2B)}.
    row = rows["ratio_equals_augmentation"]
    for fam in ("sleator_tarjan", "gc_lower", "gc_upper"):
        assert row[f"{fam}_augmentation"] == pytest.approx(
            paper["ratio_equals_augmentation"][fam], rel=0.2
        )
        # By definition ratio == augmentation at the meeting point.
        assert row[f"{fam}_ratio"] == pytest.approx(
            row[f"{fam}_augmentation"], rel=1e-3
        )
    # Constant ratio at k = Bh: ratios ~ {2, 2, 3}.
    row = rows["constant_ratio"]
    assert row["gc_lower_ratio"] == pytest.approx(2.0, rel=0.05)
    assert row["gc_upper_ratio"] == pytest.approx(3.0, rel=0.05)


def test_table1_b_penalty_structure():
    """Table 1's headline: GC multiplies ratio x augmentation by ~B."""
    B, h = 64.0, 10_000.0
    rows = {r["setting"]: r for r in table1_rows(h=h, B=B)}
    st = rows["constant_augmentation"]["sleator_tarjan_ratio"] * 2
    gc = rows["constant_augmentation"]["gc_lower_ratio"] * 2
    assert gc / st == pytest.approx(B / 2, rel=0.05)

"""Policy registry tests."""

import pytest

from repro.core.mapping import FixedBlockMapping
from repro.errors import ConfigurationError
from repro.policies import Policy, make_policy, policy_names
from repro.policies.base import register_policy


def test_all_expected_policies_registered():
    names = set(policy_names())
    expected = {
        "item-lru",
        "item-fifo",
        "item-mru",
        "item-clock",
        "item-lfu",
        "item-random",
        "block-lru",
        "block-fifo",
        "iblp",
        "iblp-blockfirst",
        "athreshold-lru",
        "marking-lru",
        "gcm",
        "gcm-markall",
        "belady-item",
        "belady-block",
        "belady-gc",
    }
    assert expected <= names


def test_make_policy_constructs(small_mapping):
    p = make_policy("item-lru", 8, small_mapping)
    assert p.capacity == 8
    assert p.name == "item-lru"


def test_make_policy_kwargs(small_mapping):
    p = make_policy("athreshold-lru", 8, small_mapping, a=3)
    assert p.a == 3


def test_make_policy_unknown_name(small_mapping):
    with pytest.raises(ConfigurationError, match="unknown policy"):
        make_policy("nope", 8, small_mapping)


def test_register_rejects_unnamed():
    class Nameless(Policy):
        name = "abstract"

        def access(self, item):  # pragma: no cover
            raise NotImplementedError

        def contains(self, item):  # pragma: no cover
            return False

        def resident_items(self):  # pragma: no cover
            return frozenset()

    with pytest.raises(ConfigurationError):
        register_policy(Nameless)


def test_register_rejects_duplicates():
    class Duplicate(Policy):
        name = "item-lru"

        def access(self, item):  # pragma: no cover
            raise NotImplementedError

        def contains(self, item):  # pragma: no cover
            return False

        def resident_items(self):  # pragma: no cover
            return frozenset()

    with pytest.raises(ConfigurationError, match="duplicate"):
        register_policy(Duplicate)


def test_offline_flag():
    from repro.policies import BeladyItem, ItemLRU

    assert BeladyItem.is_offline
    assert not ItemLRU.is_offline

"""End-to-end integration tests tying policies, workloads, and theory."""

import numpy as np
import pytest

from repro.analysis.sweep import grid, sweep
from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.locality.profile import profile_trace
from repro.bounds.locality import fault_rate_lower, iblp_fault_rate_upper
from repro.offline.heuristics import BeladyGC
from repro.policies import (
    GCM,
    IBLP,
    BlockLRU,
    ItemLRU,
    make_policy,
    policy_names,
)
from repro.workloads import (
    dram_cache_workload,
    hot_and_stream,
    markov_spatial,
    page_cache_workload,
    sequential_scan,
    zipf_items,
)

ONLINE = sorted(n for n in policy_names() if not n.startswith("belady"))


def test_every_policy_survives_every_workload():
    """Full cross-product under referee validation."""
    workloads = [
        zipf_items(1500, 256, block_size=8, seed=1),
        sequential_scan(256, block_size=8, repeats=6),
        markov_spatial(1500, 256, block_size=8, stay=0.7, seed=2),
        hot_and_stream(1500, hot_items=16, stream_blocks=24, block_size=8, seed=3),
    ]
    for trace in workloads:
        for name in ONLINE:
            res = simulate(
                make_policy(name, 32, trace.mapping),
                trace,
                cross_check_every=200,
            )
            assert res.accesses == len(trace), (name, trace.metadata)


def test_offline_beladygc_dominates_online_policies():
    """The clairvoyant heuristic should beat every online policy on
    realistic workloads (it is not OPT, but it sees the future)."""
    trace = markov_spatial(4000, 512, block_size=8, stay=0.8, seed=4)
    k = 64
    offline = simulate(BeladyGC(k, trace.mapping), trace).misses
    for name in ("item-lru", "block-lru", "iblp", "gcm"):
        online = simulate(make_policy(name, k, trace.mapping), trace).misses
        assert offline <= online, name


def test_spatial_workload_ranking():
    """On pure streams: block-loading policies beat item caches by ~B."""
    trace = sequential_scan(4096, block_size=8, repeats=2)
    k = 128
    item = simulate(ItemLRU(k, trace.mapping), trace).misses
    block = simulate(BlockLRU(k, trace.mapping), trace).misses
    iblp = simulate(IBLP(k, trace.mapping), trace).misses
    gcm = simulate(GCM(k, trace.mapping), trace).misses
    assert item == pytest.approx(8 * block, rel=0.01)
    assert iblp == block
    assert gcm == block


def test_temporal_workload_ranking():
    """On scattered hot items, item caches beat block caches."""
    trace = zipf_items(20_000, 4096, alpha=1.1, block_size=8, seed=5)
    k = 256
    item = simulate(ItemLRU(k, trace.mapping), trace).misses
    block = simulate(BlockLRU(k, trace.mapping), trace).misses
    assert item < block


def test_dram_scenario_iblp_competitive():
    """On the DRAM-row scenario IBLP tracks the better baseline."""
    trace = dram_cache_workload(length=30_000, rows=256, lines_per_row=32, seed=6)
    k = 512
    misses = {
        name: simulate(make_policy(name, k, trace.mapping), trace).misses
        for name in ("item-lru", "block-lru", "iblp")
    }
    assert misses["iblp"] <= 1.25 * min(misses.values())


def test_page_cache_scenario_runs_all_policies():
    trace = page_cache_workload(length=10_000, files=32, pages_per_file=16, seed=7)
    k = 256
    for name in ("item-lru", "block-lru", "iblp", "gcm"):
        res = simulate(make_policy(name, k, trace.mapping), trace)
        assert 0 < res.misses < len(trace)


def test_profile_bounds_bracket_measured_fault_rate():
    """Theorems 8/11 evaluated on the *empirical* profile bracket IBLP."""
    trace = markov_spatial(20_000, 512, block_size=8, stay=0.85, seed=8)
    k = 64
    prof = profile_trace(trace)
    loc = prof.to_bounds()
    res = simulate(IBLP(k, trace.mapping), trace)
    upper = iblp_fault_rate_upper(loc, k // 2, k - k // 2, 8)
    # The upper bound holds for adversarially-ordered traces with this
    # profile; a concrete trace must respect it (with slack for the
    # bound's O(1) terms at small sizes).
    assert res.miss_ratio <= upper * 1.5 + 0.05
    # The Theorem 8 lower bound is worst-case over policies, so it may
    # exceed this particular policy's rate, but it must be a valid rate.
    assert 0 <= fault_rate_lower(loc, k) <= 1


def test_sweep_integrates_with_simulator():
    def cell(policy, k):
        trace = zipf_items(1000, 256, block_size=8, seed=9)
        res = simulate(make_policy(policy, k, trace.mapping), trace)
        return {"misses": res.misses}

    rows = sweep(cell, grid(policy=["item-lru", "iblp"], k=[16, 64]))
    assert len(rows) == 4
    by = {(r["policy"], r["k"]): r["misses"] for r in rows}
    assert by[("item-lru", 64)] <= by[("item-lru", 16)]


def test_trace_roundtrip_preserves_simulation(tmp_path):
    trace = hot_and_stream(3000, hot_items=16, stream_blocks=32, block_size=8, seed=10)
    path = tmp_path / "ht.npz"
    trace.save(path)
    loaded = Trace.load(path)
    a = simulate(IBLP(64, trace.mapping), trace).misses
    b = simulate(IBLP(64, loaded.mapping), loaded).misses
    assert a == b


def test_iblp_even_split_reasonable_everywhere():
    """Even-split IBLP is never catastrophically worse than the best
    single-granularity baseline across the workload zoo (§7.3's
    argument that IBLP 'performs well in practice')."""
    k = 128
    workloads = [
        zipf_items(10_000, 1024, block_size=8, seed=11),
        sequential_scan(1024, block_size=8, repeats=8),
        markov_spatial(10_000, 1024, block_size=8, stay=0.8, seed=12),
        hot_and_stream(10_000, hot_items=32, stream_blocks=96, block_size=8, seed=13),
    ]
    for trace in workloads:
        iblp = simulate(IBLP(k, trace.mapping), trace).misses
        item = simulate(ItemLRU(k, trace.mapping), trace).misses
        block = simulate(BlockLRU(k, trace.mapping), trace).misses
        assert iblp <= 2.2 * min(item, block), trace.metadata

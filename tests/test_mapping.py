"""Block mapping tests: fixed and explicit partitions."""

import numpy as np
import pytest

from repro.core.mapping import ExplicitBlockMapping, FixedBlockMapping
from repro.errors import ConfigurationError


class TestFixedBlockMapping:
    def test_basic_partition(self):
        m = FixedBlockMapping(universe=12, block_size=4)
        assert m.num_blocks == 3
        assert m.block_of(0) == 0
        assert m.block_of(5) == 1
        assert m.items_in(2) == (8, 9, 10, 11)

    def test_partial_last_block(self):
        m = FixedBlockMapping(universe=10, block_size=4)
        assert m.num_blocks == 3
        assert m.items_in(2) == (8, 9)
        assert m.block_size(2) == 2

    def test_unit_blocks_degenerate_to_traditional(self):
        m = FixedBlockMapping(universe=5, block_size=1)
        assert m.num_blocks == 5
        for i in range(5):
            assert m.items_in(i) == (i,)

    def test_out_of_range_item(self):
        m = FixedBlockMapping(universe=8, block_size=4)
        with pytest.raises(ConfigurationError):
            m.block_of(8)
        with pytest.raises(ConfigurationError):
            m.block_of(-1)
        with pytest.raises(ConfigurationError):
            m.items_in(2)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            FixedBlockMapping(universe=0, block_size=4)
        with pytest.raises(ConfigurationError):
            FixedBlockMapping(universe=4, block_size=0)

    def test_vectorized_blocks_of(self):
        m = FixedBlockMapping(universe=16, block_size=4)
        items = np.array([0, 3, 4, 15])
        assert m.blocks_of(items).tolist() == [0, 0, 1, 3]

    def test_vectorized_range_check(self):
        m = FixedBlockMapping(universe=8, block_size=4)
        with pytest.raises(ConfigurationError):
            m.blocks_of(np.array([0, 99]))


class TestExplicitBlockMapping:
    def test_ragged_blocks(self):
        # Blocks: {0,1}, {2}, {3,4,5}
        m = ExplicitBlockMapping([0, 0, 1, 2, 2, 2])
        assert m.num_blocks == 3
        assert m.max_block_size == 3
        assert m.items_in(0) == (0, 1)
        assert m.items_in(2) == (3, 4, 5)
        assert m.block_of(2) == 1

    def test_from_groups(self):
        m = ExplicitBlockMapping.from_groups([[0, 2], [1, 3]])
        assert m.block_of(0) == m.block_of(2) == 0
        assert m.block_of(1) == m.block_of(3) == 1
        assert m.items_in(0) == (0, 2)

    def test_from_groups_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            ExplicitBlockMapping.from_groups([[0, 1], [1, 2]])

    def test_from_groups_rejects_sparse_items(self):
        with pytest.raises(ConfigurationError):
            ExplicitBlockMapping.from_groups([[0, 2]])  # item 1 missing

    def test_rejects_sparse_block_ids(self):
        with pytest.raises(ConfigurationError):
            ExplicitBlockMapping([0, 2])  # block 1 empty

    def test_rejects_oversized_block(self):
        with pytest.raises(ConfigurationError):
            ExplicitBlockMapping([0, 0, 0], max_block_size=2)

    def test_explicit_max_block_size(self):
        m = ExplicitBlockMapping([0, 0, 1], max_block_size=5)
        assert m.max_block_size == 5

    def test_vectorized_blocks_of(self):
        m = ExplicitBlockMapping([0, 1, 1, 0])
        assert m.blocks_of(np.array([0, 1, 2, 3])).tolist() == [0, 1, 1, 0]

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ConfigurationError):
            ExplicitBlockMapping([])
        with pytest.raises(ConfigurationError):
            ExplicitBlockMapping([-1, 0])


def test_every_item_in_exactly_one_block():
    """Partition invariant across mapping kinds."""
    for m in (
        FixedBlockMapping(universe=20, block_size=6),
        ExplicitBlockMapping([0, 1, 0, 2, 2, 1, 3, 3, 3, 0]),
    ):
        seen = {}
        for blk in range(m.num_blocks):
            for item in m.items_in(blk):
                assert item not in seen
                seen[item] = blk
        assert sorted(seen) == list(range(m.universe))
        for item, blk in seen.items():
            assert m.block_of(item) == blk

"""Mattson stack-algorithm MRC tests, validated against the simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mrc import (
    block_lru_stack_distances,
    iblp_mrc_grid,
    lru_stack_distances,
    miss_ratio_curve,
)
from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies import BlockLRU, ItemLRU
from repro.workloads import zipf_items


def test_stack_distances_known():
    # trace: a b a c b a
    dists = lru_stack_distances([0, 1, 0, 2, 1, 0])
    assert dists.tolist() == [-1, -1, 1, -1, 2, 2]


def test_cold_misses_marked():
    dists = lru_stack_distances([5, 6, 7])
    assert dists.tolist() == [-1, -1, -1]


def test_immediate_reuse_distance_zero():
    dists = lru_stack_distances([3, 3, 3])
    assert dists.tolist() == [-1, 0, 0]


def test_mrc_matches_simulated_lru():
    trace = zipf_items(4000, universe=256, alpha=0.9, block_size=8, seed=1)
    dists = lru_stack_distances(trace.items)
    curve = dict(miss_ratio_curve(dists, [4, 16, 64, 256]))
    for k, predicted in curve.items():
        res = simulate(ItemLRU(k, trace.mapping), trace)
        assert res.miss_ratio == pytest.approx(predicted, abs=1e-12), k


def test_block_mrc_matches_simulated_block_lru():
    trace = zipf_items(3000, universe=256, alpha=0.8, block_size=8, seed=2)
    dists = block_lru_stack_distances(trace)
    # Block-LRU with item capacity k holds k/B blocks.
    for k in (16, 64, 128):
        slots = k // trace.block_size
        predicted = dict(miss_ratio_curve(dists, [slots]))[slots]
        res = simulate(BlockLRU(k, trace.mapping), trace)
        assert res.miss_ratio == pytest.approx(predicted, abs=1e-12), k


def test_mrc_monotone_in_capacity():
    trace = zipf_items(3000, universe=512, alpha=1.0, block_size=8, seed=3)
    dists = lru_stack_distances(trace.items)
    curve = miss_ratio_curve(dists, range(1, 200, 7))
    ratios = [r for _, r in curve]
    assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))


def test_mrc_validation():
    with pytest.raises(ConfigurationError):
        miss_ratio_curve(np.array([]), [1])
    with pytest.raises(ConfigurationError):
        miss_ratio_curve(np.array([0, 1]), [0])


def test_iblp_grid_shape_and_extremes():
    mapping = FixedBlockMapping(universe=256, block_size=8)
    trace = Trace(np.tile(np.arange(256), 3), mapping)
    rows = iblp_mrc_grid(trace, capacities=[32], splits=(0.0, 1.0))
    by = {r["item_fraction"]: r["miss_ratio"] for r in rows}
    # Pure block layer aces the scan; pure item layer pays per item.
    assert by[0.0] < by[1.0]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 15), min_size=1, max_size=120))
def test_stack_distance_vs_naive(items):
    """Fenwick implementation matches the quadratic definition."""
    expected = []
    for t, x in enumerate(items):
        prev = None
        for s in range(t - 1, -1, -1):
            if items[s] == x:
                prev = s
                break
        if prev is None:
            expected.append(-1)
        else:
            expected.append(len(set(items[prev + 1 : t])))
    assert lru_stack_distances(items).tolist() == expected


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 31), min_size=1, max_size=100),
    st.integers(1, 20),
)
def test_mrc_agrees_with_simulation_property(items, k):
    mapping = FixedBlockMapping(universe=32, block_size=4)
    trace = Trace(np.asarray(items, dtype=np.int64), mapping)
    dists = lru_stack_distances(trace.items)
    predicted = dict(miss_ratio_curve(dists, [k]))[k]
    res = simulate(ItemLRU(k, mapping), trace)
    assert res.miss_ratio == pytest.approx(predicted, abs=1e-12)

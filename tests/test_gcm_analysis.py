"""§6 randomized-claims experiment tests."""

from repro.experiments import gcm_analysis


def test_block_walk_b_factor():
    rows = gcm_analysis.block_walk(k=128, B=8, blocks=128, seeds=range(3))
    by = {r["label"]: r for r in rows}
    # Deterministic on this trace: exactly one miss per block vs one
    # per item.
    assert by["marking-lru"]["mean"] == 8 * by["gcm"]["mean"]
    assert by["gcm"]["std"] == 0.0  # scan leaves no room for randomness


def test_pollution_separation_with_confidence():
    rows = gcm_analysis.pollution(k=128, B=8, length=10_000, seeds=range(4))
    by = {r["label"]: r for r in rows}
    assert by["gcm"]["ci_high"] < by["gcm-markall"]["ci_low"]
    # GCM converges: it pays little more than the cold working set.
    assert by["gcm"]["mean"] < 0.05 * by["gcm-markall"]["mean"]


def test_partial_dial_monotone_on_spatial_mix():
    rows = gcm_analysis.partial_dial(k=128, B=8, length=10_000, seeds=range(3))
    means = [r["mean"] for r in rows]  # load_count = 1, 2, 4, 8
    assert means[0] > means[-1]
    assert all(a >= b * 0.95 for a, b in zip(means, means[1:]))


def test_render_smoke():
    text = gcm_analysis.render(k=64, B=4)
    assert "block walk" in text and "pollution" in text

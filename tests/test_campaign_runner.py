"""Campaign executor tests: memoization, retry/backoff/quarantine,
worker-death fault injection, and bit-identity with plain ``sweep``."""

import multiprocessing
import os
import signal
import time

import pytest

import repro.campaign.runner as runner_mod
from repro.analysis.sweep import simulate_cell, sweep
from repro.campaign import (
    CampaignCache,
    CampaignRunner,
    CampaignSpec,
    RetryPolicy,
    TraceSpec,
)
from repro.errors import ConfigurationError

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(
    not _HAS_FORK, reason="fault injection monkeypatches across fork"
)

TRACE = TraceSpec(
    kind="workload",
    name="uniform",
    params={"length": 1200, "universe": 128, "block_size": 4, "seed": 3},
)


def make_spec(policies=("item-lru", "iblp"), capacities=(16, 64), fast=True):
    return CampaignSpec.from_grid(
        name="t",
        policies=list(policies),
        capacities=list(capacities),
        traces={"u": TRACE},
        fast=fast,
    )


def sweep_rows(spec):
    """Serial uninterrupted sweep of the same grid, campaign-ordered."""
    traces = {key: t.materialize() for key, t in spec.traces.items()}
    cells = [
        dict(
            policy=c.policy,
            capacity=c.capacity,
            trace=traces[c.trace],
            fast=c.fast,
            **c.policy_kwargs,
        )
        for c in spec.cells
    ]
    rows = sweep(simulate_cell, cells)
    for row in rows:
        row.pop("trace")
    return rows


def campaign_rows(report):
    rows = report.rows()
    for row in rows:
        row.pop("trace")
    return rows


class TestBitIdentity:
    def test_serial_matches_sweep(self, tmp_path):
        spec = make_spec()
        with CampaignRunner(tmp_path, spec, store_sync=False) as runner:
            report = runner.run()
        assert report.complete
        assert campaign_rows(report) == sweep_rows(spec)

    def test_parallel_matches_sweep(self, tmp_path):
        spec = make_spec()
        with CampaignRunner(
            tmp_path, spec, parallel=True, max_workers=2, store_sync=False
        ) as runner:
            report = runner.run()
        assert report.complete
        assert campaign_rows(report) == sweep_rows(spec)

    def test_referee_cells_match_sweep(self, tmp_path):
        spec = make_spec(policies=("item-lru",), capacities=(16,), fast=False)
        with CampaignRunner(tmp_path, spec, store_sync=False) as runner:
            report = runner.run()
        assert campaign_rows(report) == sweep_rows(spec)


class TestMemoStore:
    def test_identical_rerun_computes_zero_cells(self, tmp_path):
        spec = make_spec()
        with CampaignRunner(tmp_path, spec, store_sync=False) as runner:
            first = runner.run()
        assert first.computed == len(spec.cells)
        with CampaignRunner(tmp_path, spec, store_sync=False) as runner:
            second = runner.run()
        assert second.computed == 0
        assert second.memo_hits == len(spec.cells)
        assert second.memo_hit_ratio == 1.0
        assert campaign_rows(second) == campaign_rows(first)

    def test_changed_fast_flag_recomputes_all(self, tmp_path):
        with CampaignRunner(tmp_path, make_spec(fast=True), store_sync=False) as r:
            r.run()
        with CampaignRunner(tmp_path, make_spec(fast=False), store_sync=False) as r:
            report = r.run()
        assert report.computed == 4
        assert report.memo_hits == 0

    def test_widened_grid_recomputes_exactly_new_cells(self, tmp_path):
        with CampaignRunner(
            tmp_path, make_spec(capacities=(16, 64)), store_sync=False
        ) as r:
            r.run()
        with CampaignRunner(
            tmp_path, make_spec(capacities=(16, 64, 256)), store_sync=False
        ) as r:
            report = r.run()
        assert report.memo_hits == 4  # the overlapping cells
        assert report.computed == 2  # only capacity=256, one per policy
        computed = [o.cell.capacity for o in report.outcomes if not o.memo]
        assert computed == [256, 256]

    def test_changed_policy_kwargs_recompute(self, tmp_path):
        base = CampaignSpec.from_grid(
            name="t",
            policies=["gcm"],
            capacities=[16],
            traces={"u": TRACE},
            policy_kwargs={"seed": 0},
        )
        with CampaignRunner(tmp_path, base, store_sync=False) as r:
            assert r.run().computed == 1
        reseeded = CampaignSpec.from_grid(
            name="t",
            policies=["gcm"],
            capacities=[16],
            traces={"u": TRACE},
            policy_kwargs={"seed": 1},
        )
        with CampaignRunner(tmp_path, reseeded, store_sync=False) as r:
            report = r.run()
        assert report.computed == 1
        assert report.memo_hits == 0

    def test_changed_trace_recomputes(self, tmp_path):
        other_trace = TraceSpec(
            kind="workload",
            name="uniform",
            params={**TRACE.params, "seed": 4},
        )
        with CampaignRunner(tmp_path, make_spec(), store_sync=False) as r:
            r.run()
        changed = CampaignSpec.from_grid(
            name="t",
            policies=["item-lru", "iblp"],
            capacities=[16, 64],
            traces={"u": other_trace},
        )
        with CampaignRunner(tmp_path, changed, store_sync=False) as r:
            report = r.run()
        assert report.computed == 4
        assert report.memo_hits == 0


class TestRetryAndQuarantine:
    def test_transient_failure_retries_then_succeeds(self, tmp_path, monkeypatch):
        spec = make_spec(policies=("item-lru",), capacities=(16,))
        real = runner_mod.execute_cell
        calls = {"n": 0}

        def flaky(cell, trace):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise OSError("transient I/O blip")
            return real(cell, trace)

        monkeypatch.setattr(runner_mod, "execute_cell", flaky)
        sleeps = []
        with CampaignRunner(
            tmp_path,
            spec,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.25, backoff_factor=4.0),
            sleep=sleeps.append,
            store_sync=False,
        ) as runner:
            report = runner.run()
        assert report.complete
        assert report.attempts == 3
        assert report.failures == 2
        # Exponential backoff: 0.25s then 1.0s (within scheduling slop).
        assert len(sleeps) == 2
        assert sleeps[0] == pytest.approx(0.25, abs=0.05)
        assert sleeps[1] == pytest.approx(1.0, abs=0.05)
        monkeypatch.setattr(runner_mod, "execute_cell", real)
        assert campaign_rows(report) == sweep_rows(spec)

    def test_poison_cell_quarantined_rest_completes(self, tmp_path):
        spec = CampaignSpec(
            name="t",
            traces={"u": TRACE},
            cells=[
                runner_mod.CellSpec(policy="item-lru", capacity=16, trace="u"),
                runner_mod.CellSpec(
                    policy="item-lru",
                    capacity=16,
                    trace="u",
                    policy_kwargs={"bogus_kwarg": 1},  # poison: TypeError
                ),
                runner_mod.CellSpec(policy="iblp", capacity=16, trace="u"),
            ],
        )
        with CampaignRunner(
            tmp_path,
            spec,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            store_sync=False,
        ) as runner:
            report = runner.run()
        assert not report.complete
        assert len(report.done) == 2
        assert len(report.quarantined) == 1
        poison = report.quarantined[0]
        assert poison.index == 1
        assert poison.attempts == 2
        assert "TypeError" in poison.error
        # The journal records the terminal quarantine.
        events = [e["event"] for e in runner.journal.replay()]
        assert "quarantined" in events

    def test_resume_rearms_quarantined_cells(self, tmp_path):
        spec = CampaignSpec(
            name="t",
            traces={"u": TRACE},
            cells=[
                runner_mod.CellSpec(
                    policy="item-lru",
                    capacity=16,
                    trace="u",
                    policy_kwargs={"bogus_kwarg": 1},
                )
            ],
        )
        retry = RetryPolicy(max_attempts=2, backoff_base=0.0)
        with CampaignRunner(tmp_path, spec, retry=retry, store_sync=False) as r:
            assert len(r.run().quarantined) == 1
        # Resume (spec loaded from the directory): fresh attempt budget.
        with CampaignRunner(tmp_path, retry=retry, store_sync=False) as r:
            report = r.run()
        assert len(report.quarantined) == 1
        assert report.attempts == 2

    @fork_only
    def test_parallel_poison_quarantined_rest_completes(self, tmp_path):
        spec = CampaignSpec(
            name="t",
            traces={"u": TRACE},
            cells=[
                runner_mod.CellSpec(policy="item-lru", capacity=16, trace="u"),
                runner_mod.CellSpec(
                    policy="item-lru",
                    capacity=16,
                    trace="u",
                    policy_kwargs={"bogus_kwarg": 1},
                ),
                runner_mod.CellSpec(policy="iblp", capacity=64, trace="u"),
            ],
        )
        with CampaignRunner(
            tmp_path,
            spec,
            parallel=True,
            max_workers=2,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.01),
            store_sync=False,
        ) as runner:
            report = runner.run()
        assert len(report.done) == 2
        assert len(report.quarantined) == 1


@fork_only
class TestWorkerCrashInjection:
    def test_sigkilled_worker_is_retried(self, tmp_path, monkeypatch):
        """A worker killed with SIGKILL mid-cell is an ordinary failed
        attempt: the cell retries and the grid completes with rows
        bit-identical to an uninterrupted serial sweep."""
        spec = make_spec()
        real = runner_mod.execute_cell
        marker = tmp_path / "died-once"

        def kamikaze(cell, trace):
            if cell.capacity == 64 and cell.policy == "iblp" and not marker.exists():
                marker.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return real(cell, trace)

        monkeypatch.setattr(runner_mod, "execute_cell", kamikaze)
        with CampaignRunner(
            tmp_path / "camp",
            spec,
            parallel=True,
            max_workers=2,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01),
            store_sync=False,
        ) as runner:
            report = runner.run()
        assert report.complete
        assert marker.exists()
        assert report.failures == 1
        errors = runner.journal.last_error_by_hash()
        assert any("WorkerDied" in e for e in errors.values())
        assert any(f"-{signal.SIGKILL}" in e for e in errors.values())
        monkeypatch.setattr(runner_mod, "execute_cell", real)
        assert campaign_rows(report) == sweep_rows(spec)

    def test_hung_worker_killed_on_timeout(self, tmp_path, monkeypatch):
        spec = make_spec(policies=("item-lru", "iblp"), capacities=(16,))
        real = runner_mod.execute_cell

        def hang(cell, trace):
            if cell.policy == "iblp":
                time.sleep(60)
            return real(cell, trace)

        monkeypatch.setattr(runner_mod, "execute_cell", hang)
        t0 = time.monotonic()
        with CampaignRunner(
            tmp_path,
            spec,
            parallel=True,
            max_workers=2,
            retry=RetryPolicy(max_attempts=1, timeout=0.5, backoff_base=0.0),
            store_sync=False,
        ) as runner:
            report = runner.run()
        assert time.monotonic() - t0 < 30  # nowhere near the 60s hang
        assert len(report.done) == 1
        assert len(report.quarantined) == 1
        assert "TimeoutError" in report.quarantined[0].error
        assert "0.5" in report.quarantined[0].error


class TestTelemetry:
    def test_phases_and_counters_published(self, tmp_path):
        from repro.telemetry import Recorder

        recorder = Recorder()
        spec = make_spec(policies=("item-lru",), capacities=(16,))
        with CampaignRunner(
            tmp_path, spec, recorder=recorder, store_sync=False
        ) as runner:
            runner.run()
        assert set(recorder.phase_seconds) == {"plan", "execute"}
        reg = recorder.registry
        assert reg.counter("campaign_cells").value == 1
        assert reg.counter("campaign_computed").value == 1
        assert reg.counter("campaign_memo_hits").value == 0
        # Second run: everything memoized, hit ratio goes to 1.
        with CampaignRunner(
            tmp_path, spec, recorder=recorder, store_sync=False
        ) as runner:
            runner.run()
        assert reg.counter("campaign_memo_hits").value == 1
        assert reg.gauge("campaign_memo_hit_ratio").value == 1.0


class TestValidation:
    def test_bad_retry_policies(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout=0)

    def test_bad_workers(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CampaignRunner(tmp_path, make_spec(), max_workers=0)


class TestCampaignCache:
    def test_bit_identical_to_direct_simulate(self, tmp_path):
        from repro.core.engine import simulate
        from repro.policies import make_policy

        trace = TRACE.materialize()
        direct = simulate(make_policy("iblp", 32, trace.mapping), trace)
        with CampaignCache(tmp_path, store_sync=False) as cache:
            first = cache.simulate("iblp", 32, trace)
            second = cache.simulate("iblp", 32, trace)
        assert first == direct
        assert second == direct
        assert cache.computed == 1
        assert cache.hits == 1
        assert cache.hit_ratio == 0.5

    def test_kwargs_and_fast_key_the_cache(self, tmp_path):
        trace = TRACE.materialize()
        with CampaignCache(tmp_path, store_sync=False) as cache:
            cache.simulate("gcm", 32, trace, seed=0)
            cache.simulate("gcm", 32, trace, seed=1)
            cache.simulate("gcm", 32, trace, fast=True, seed=0)
        assert cache.computed == 3
        assert cache.hits == 0

    def test_shares_store_with_runner(self, tmp_path):
        spec = make_spec(policies=("item-lru",), capacities=(16,))
        with CampaignRunner(tmp_path, spec, store_sync=False) as runner:
            runner.run()
        trace = TRACE.materialize()
        with CampaignCache(tmp_path, store_sync=False) as cache:
            cache.simulate("item-lru", 16, trace, fast=True)
        assert cache.hits == 1
        assert cache.computed == 0

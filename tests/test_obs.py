"""The observability layer: bench-compare gate, watch state file,
Prometheus rendering, and the ``obs`` CLI exit codes."""

import json
import threading

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.obs.bench_compare import compare_benchmarks, load_bench, render_compare
from repro.obs.promfile import render_prometheus, write_prometheus
from repro.obs.watch import (
    read_watch_state,
    render_board,
    watch_loop,
    write_watch_state,
)
from repro.telemetry.metrics import MetricsRegistry


def bench_payload(metrics, bench="demo", node="m1", sha="abc123"):
    return {
        "bench": bench,
        "schema": 1,
        "git_sha": sha,
        "machine": {"node": node},
        "metrics": metrics,
    }


def seconds_metric(value):
    return {"value": value, "unit": "s", "direction": "lower"}


def speedup_metric(value):
    return {"value": value, "unit": "x", "direction": "higher"}


class TestBenchCompare:
    def test_identical_pair_passes(self):
        base = bench_payload({"wall": seconds_metric(1.0), "speedup": speedup_metric(8.0)})
        report = compare_benchmarks(base, base, tolerance=0.15)
        assert report["regressions"] == []
        assert {r["status"] for r in report["results"]} == {"ok"}
        assert "ok: no metric regressed" in render_compare(report)

    def test_two_x_slowdown_is_flagged(self):
        base = bench_payload({"wall": seconds_metric(1.0)})
        cand = bench_payload({"wall": seconds_metric(2.0)}, sha="def456")
        report = compare_benchmarks(base, cand, tolerance=0.15)
        assert report["regressions"] == ["wall"]
        text = render_compare(report)
        assert "REGRESSION in 1 metric(s): wall" in text
        assert "+100.0%" in text

    def test_direction_higher_regresses_downward(self):
        base = bench_payload({"speedup": speedup_metric(8.0)})
        halved = bench_payload({"speedup": speedup_metric(4.0)})
        improved = bench_payload({"speedup": speedup_metric(16.0)})
        assert compare_benchmarks(base, halved)["regressions"] == ["speedup"]
        # Improvement in the good direction never fails, however large.
        assert compare_benchmarks(base, improved)["regressions"] == []

    def test_improvement_on_lower_metric_passes(self):
        base = bench_payload({"wall": seconds_metric(2.0)})
        cand = bench_payload({"wall": seconds_metric(0.5)})
        assert compare_benchmarks(base, cand)["regressions"] == []

    def test_within_tolerance_passes(self):
        base = bench_payload({"wall": seconds_metric(1.0)})
        cand = bench_payload({"wall": seconds_metric(1.1)})
        assert compare_benchmarks(base, cand, tolerance=0.15)["regressions"] == []
        assert compare_benchmarks(base, cand, tolerance=0.05)["regressions"] == [
            "wall"
        ]

    def test_one_sided_metrics_are_skipped(self):
        base = bench_payload({"wall": seconds_metric(1.0), "old": seconds_metric(1.0)})
        cand = bench_payload({"wall": seconds_metric(1.0), "new": seconds_metric(1.0)})
        report = compare_benchmarks(base, cand)
        assert sorted(report["skipped"]) == ["new", "old"]
        assert report["regressions"] == []

    def test_metrics_filter(self):
        base = bench_payload(
            {"wall": seconds_metric(1.0), "speedup": speedup_metric(8.0)}
        )
        cand = bench_payload(
            {"wall": seconds_metric(9.0), "speedup": speedup_metric(8.0)}
        )
        report = compare_benchmarks(base, cand, metrics=["speedup"])
        assert report["regressions"] == []  # the 9x wall slowdown is excluded
        assert "wall" in report["skipped"]
        with pytest.raises(ConfigurationError, match="not present"):
            compare_benchmarks(base, cand, metrics=["nope"])

    def test_load_bench_validates(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(bench_payload({"wall": seconds_metric(1.0)})))
        assert load_bench(good)["bench"] == "demo"
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_bench(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_bench(bad)
        no_metrics = tmp_path / "no_metrics.json"
        no_metrics.write_text(json.dumps({"bench": "x"}))
        with pytest.raises(ConfigurationError, match="no 'metrics'"):
            load_bench(no_metrics)
        bad_dir = tmp_path / "bad_dir.json"
        bad_dir.write_text(
            json.dumps(
                bench_payload({"wall": {"value": 1.0, "direction": "sideways"}})
            )
        )
        with pytest.raises(ConfigurationError, match="direction"):
            load_bench(bad_dir)

    def test_cli_exit_codes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        slow = tmp_path / "slow.json"
        base.write_text(json.dumps(bench_payload({"wall": seconds_metric(1.0)})))
        slow.write_text(json.dumps(bench_payload({"wall": seconds_metric(2.0)})))
        assert main(["obs", "bench-compare", str(base), str(base)]) == 0
        assert "ok: no metric regressed" in capsys.readouterr().out
        assert main(["obs", "bench-compare", str(base), str(slow)]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # A looser tolerance waves the same pair through.
        assert (
            main(
                ["obs", "bench-compare", str(base), str(slow), "--tolerance", "1.5"]
            )
            == 0
        )
        capsys.readouterr()


class TestWatchState:
    def test_roundtrip_and_missing(self, tmp_path):
        path = tmp_path / "watch.json"
        assert read_watch_state(path) is None
        write_watch_state(path, {"cells": 4, "done": 1})
        assert read_watch_state(path) == {"cells": 4, "done": 1}
        path.write_text("{torn")
        assert read_watch_state(path) is None

    def test_no_leftover_temp_files(self, tmp_path):
        path = tmp_path / "watch.json"
        write_watch_state(path, {"done": 1})
        assert [p.name for p in tmp_path.iterdir()] == ["watch.json"]

    def test_atomic_under_concurrent_writers(self, tmp_path):
        """Hammer the file from several threads while reading it
        continuously: every read must be a complete document."""
        path = tmp_path / "watch.json"
        writes_per_thread = 80
        stop = threading.Event()
        torn = []

        def writer(worker):
            for i in range(writes_per_thread):
                write_watch_state(
                    path, {"worker": worker, "i": i, "pad": "x" * 256}
                )

        def reader():
            while not stop.is_set():
                state = read_watch_state(path)
                if state is not None and set(state) != {"worker", "i", "pad"}:
                    torn.append(state)

        threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
        observer = threading.Thread(target=reader)
        observer.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        observer.join()
        assert torn == []
        final = read_watch_state(path)
        assert final["i"] == writes_per_thread - 1

    def test_render_board(self):
        state = {
            "name": "grid",
            "run": 2,
            "ts": 100.0,
            "finished": False,
            "cells": 10,
            "done": 4,
            "memo_hits": 1,
            "computed": 3,
            "attempts": 5,
            "failures": 2,
            "quarantined": 1,
            "accesses_per_sec": 123456.0,
            "store_hit_ratio": 0.25,
            "elapsed_seconds": 65.0,
            "eta_seconds": 130.0,
            "running": [
                {
                    "pid": 99,
                    "index": 7,
                    "policy": "iblp",
                    "capacity": 256,
                    "trace": "zipf",
                    "attempt": 1,
                    "seconds": 3.0,
                }
            ],
        }
        board = render_board(state, now=101.5)
        assert "campaign 'grid' · run 2 · running (heartbeat 1.5s ago)" in board
        assert "4/10 cells done · 1 quarantined" in board
        assert "123,456 accesses/s" in board
        assert "elapsed 1m05s · ETA 2m10s" in board
        assert "pid 99: cell #7 iblp/k=256 trace=zipf attempt 1 · 3s" in board

    def test_watch_loop_once(self, tmp_path, capsys):
        assert main(["campaign", "watch", str(tmp_path), "--once"]) == 1
        assert "no heartbeat yet" in capsys.readouterr().out
        write_watch_state(
            tmp_path / "watch.json",
            {"name": "g", "cells": 2, "done": 2, "finished": True},
        )
        assert main(["campaign", "watch", str(tmp_path), "--once"]) == 0
        assert "2/2 cells done" in capsys.readouterr().out

    def test_watch_loop_follows_until_finished(self, tmp_path):
        path = tmp_path / "watch.json"
        write_watch_state(path, {"cells": 2, "done": 1, "finished": False})
        frames = []

        class FakeStream:
            def write(self, text):
                frames.append(text)

            def flush(self):
                pass

            def isatty(self):
                return False

        ticks = iter(range(10))

        def fake_sleep(_interval):
            if next(ticks) >= 1:
                write_watch_state(path, {"cells": 2, "done": 2, "finished": True})

        code = watch_loop(
            tmp_path, interval=0.01, stream=FakeStream(), sleep=fake_sleep
        )
        assert code == 0
        joined = "".join(frames)
        assert "1/2 cells done" in joined
        assert "2/2 cells done" in joined


class TestPromfile:
    def test_render_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("cells_total").inc(5)
        registry.gauge("eta_seconds").set(12.5)
        hist = registry.histogram("cell_seconds", edges=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = render_prometheus(registry)
        assert "# TYPE repro_cells_total counter" in text
        assert "repro_cells_total 5" in text
        assert "# TYPE repro_eta_seconds gauge" in text
        assert "repro_eta_seconds 12.5" in text
        assert "# TYPE repro_cell_seconds histogram" in text
        assert 'repro_cell_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_cell_seconds_bucket{le="1"} 2' in text
        assert 'repro_cell_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_cell_seconds_count 3" in text
        assert text.endswith("\n")

    def test_write_is_atomic_and_sanitizes_names(self, tmp_path):
        registry = MetricsRegistry()
        registry.gauge("weird-name.dots").set(1)
        out = tmp_path / "metrics.prom"
        write_prometheus(registry, out)
        text = out.read_text()
        assert "repro_weird_name_dots 1" in text
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.prom"]

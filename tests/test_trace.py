"""Trace container tests: validation, projections, serialization."""

import numpy as np
import pytest

from repro.core.mapping import ExplicitBlockMapping, FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import TraceFormatError


def test_basic_properties(small_mapping):
    t = Trace(np.array([0, 1, 4, 4]), small_mapping)
    assert len(t) == 4
    assert list(t) == [0, 1, 4, 4]
    assert t.universe == 64
    assert t.block_size == 4
    assert t.distinct_items() == 3
    assert t.distinct_blocks() == 2
    assert t.block_trace().tolist() == [0, 0, 1, 1]


def test_rejects_out_of_universe(small_mapping):
    with pytest.raises(TraceFormatError):
        Trace(np.array([0, 999]), small_mapping)
    with pytest.raises(TraceFormatError):
        Trace(np.array([-1]), small_mapping)


def test_rejects_2d(small_mapping):
    with pytest.raises(TraceFormatError):
        Trace(np.zeros((2, 2), dtype=np.int64), small_mapping)


def test_empty_trace_ok(small_mapping):
    t = Trace(np.array([], dtype=np.int64), small_mapping)
    assert len(t) == 0
    assert t.distinct_items() == 0
    assert t.distinct_blocks() == 0


def test_concat(small_mapping):
    a = Trace(np.array([0, 1]), small_mapping)
    b = Trace(np.array([2]), small_mapping)
    c = a.concat(b)
    assert list(c) == [0, 1, 2]


def test_concat_rejects_mismatched_mapping(small_mapping):
    other = FixedBlockMapping(universe=64, block_size=8)
    a = Trace(np.array([0]), small_mapping)
    b = Trace(np.array([0]), other)
    with pytest.raises(TraceFormatError):
        a.concat(b)


def test_from_list_rounds_universe():
    t = Trace.from_list([0, 9], block_size=4)
    assert t.universe == 12  # 10 rounded up to whole blocks
    assert t.block_size == 4


def test_save_load_fixed(tmp_path, small_mapping):
    t = Trace(
        np.array([0, 5, 5, 9]), small_mapping, {"generator": "unit", "seed": 3}
    )
    path = tmp_path / "trace.npz"
    t.save(path)
    loaded = Trace.load(path)
    assert loaded.items.tolist() == t.items.tolist()
    assert loaded.universe == t.universe
    assert loaded.block_size == t.block_size
    assert loaded.metadata["generator"] == "unit"
    assert loaded.metadata["seed"] == 3


def test_save_load_explicit(tmp_path):
    mapping = ExplicitBlockMapping([0, 0, 1, 2, 2], max_block_size=4)
    t = Trace(np.array([0, 2, 4]), mapping)
    path = tmp_path / "explicit.npz"
    t.save(path)
    loaded = Trace.load(path)
    assert loaded.items.tolist() == [0, 2, 4]
    assert loaded.mapping.num_blocks == 3
    assert loaded.mapping.max_block_size == 4
    assert loaded.mapping.items_in(2) == (3, 4)

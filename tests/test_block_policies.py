"""Block cache tests: whole-block loads, whole-block evictions."""

import numpy as np
import pytest

from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.policies import BlockFIFO, BlockLRU


@pytest.fixture
def mapping():
    return FixedBlockMapping(universe=64, block_size=4)


@pytest.mark.parametrize("cls", [BlockLRU, BlockFIFO])
def test_loads_whole_block(cls, mapping):
    p = cls(16, mapping)
    out = p.access(5)
    assert out.loaded == frozenset([4, 5, 6, 7])
    for item in (4, 5, 6, 7):
        assert p.contains(item)


@pytest.mark.parametrize("cls", [BlockLRU, BlockFIFO])
def test_evicts_whole_block(cls, mapping):
    p = cls(8, mapping)  # exactly two blocks fit
    p.access(0)
    p.access(4)
    out = p.access(8)  # must evict one whole block
    assert out.evicted in (frozenset([0, 1, 2, 3]), frozenset([4, 5, 6, 7]))


def test_block_lru_touch_on_hit(mapping):
    p = BlockLRU(8, mapping)
    p.access(0)
    p.access(4)
    p.access(1)  # hit in block 0: refresh it
    out = p.access(8)
    assert out.evicted == frozenset([4, 5, 6, 7])


def test_block_fifo_ignores_hits(mapping):
    p = BlockFIFO(8, mapping)
    p.access(0)
    p.access(4)
    p.access(1)  # hit must NOT refresh block 0
    out = p.access(8)
    assert out.evicted == frozenset([0, 1, 2, 3])


def test_residency_is_union_of_blocks(mapping):
    p = BlockLRU(12, mapping)
    p.access(0)
    p.access(9)
    assert p.resident_items() == frozenset(range(0, 4)) | frozenset(range(8, 12))
    assert p.resident_blocks() == frozenset([0, 2])


def test_scan_hits_spatially(mapping):
    trace = Trace(np.arange(64), mapping)
    res = simulate(BlockLRU(16, mapping), trace)
    assert res.misses == 16  # one per block
    assert res.spatial_hits == 48


def test_pollution_on_sparse_access(mapping):
    """One item per block: a block cache is effectively k/B sized."""
    stride_trace = Trace(np.arange(0, 64, 4), mapping)  # one per block
    res_block = simulate(BlockLRU(8, mapping), stride_trace.concat(stride_trace))
    # 16 blocks, only 2 fit: every access misses.
    assert res_block.hits == 0


def test_tiny_capacity_trims_block(mapping):
    p = BlockLRU(2, mapping)
    out = p.access(5)
    assert 5 in out.loaded
    assert len(out.loaded) == 2
    assert out.loaded <= frozenset([4, 5, 6, 7])


def test_referee_accepts_block_policies(mapping):
    trace = Trace(
        np.random.default_rng(0).integers(0, 64, 600, dtype=np.int64), mapping
    )
    for cls in (BlockLRU, BlockFIFO):
        res = simulate(cls(12, mapping), trace, cross_check_every=37)
        assert res.accesses == 600


def test_partial_last_block():
    mapping = FixedBlockMapping(universe=10, block_size=4)
    p = BlockLRU(8, mapping)
    out = p.access(9)  # last block has only items {8, 9}
    assert out.loaded == frozenset([8, 9])

"""Router invariants: the hashing layer under the cluster.

The load-bearing guarantee is the *block-aware* scheme's: a block is
never split across shards, for any shard count, seed, or vnode count —
that is what preserves spatial locality under sharding.  The rest pins
determinism (same spec ⇒ same routing), the exactly-once partition
property of :meth:`ShardRouter.split`, and the derived sub-trace
fingerprints (satellite of the memoization story: splitting must not
rehash trace payloads).
"""

import numpy as np
import pytest

from repro.cluster.router import (
    SCHEMES,
    RoutingPlan,
    ShardRouter,
    derived_fingerprint,
)
from repro.errors import ConfigurationError
from repro.workloads import markov_spatial, zipf_items


def trace():
    return markov_spatial(
        length=6000, universe=1024, block_size=8, stay=0.85, seed=5
    )


@pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 8, 16])
@pytest.mark.parametrize("seed", [0, 1, 7])
def test_block_scheme_never_splits_a_block(n_shards, seed):
    tr = trace()
    router = ShardRouter(n_shards=n_shards, scheme="block", seed=seed)
    items = np.arange(tr.mapping.universe, dtype=np.int64)
    shards = router.shards_of(items, tr.mapping)
    blocks = tr.mapping.blocks_of(items)
    for block in np.unique(blocks):
        owners = np.unique(shards[blocks == block])
        assert owners.size == 1, f"block {block} split across {owners}"
    assert router.block_split_stats(tr)["blocks_split"] == 0


def test_item_scheme_splits_blocks_and_modulo_is_exact():
    tr = trace()
    striped = ShardRouter(n_shards=4, scheme="item")
    stats = striped.block_split_stats(tr)
    assert stats["blocks_split"] > 0
    assert stats["mean_shards_per_block"] > 1.0

    items = np.arange(tr.mapping.universe, dtype=np.int64)
    modulo = ShardRouter(n_shards=4, scheme="modulo")
    np.testing.assert_array_equal(
        modulo.shards_of(items, tr.mapping), items % 4
    )


@pytest.mark.parametrize("scheme", SCHEMES)
def test_routing_is_deterministic_and_single_shard_is_trivial(scheme):
    tr = trace()
    a = ShardRouter(n_shards=4, scheme=scheme)
    b = ShardRouter(n_shards=4, scheme=scheme)
    items = np.arange(tr.mapping.universe, dtype=np.int64)
    np.testing.assert_array_equal(
        a.shards_of(items, tr.mapping), b.shards_of(items, tr.mapping)
    )
    one = ShardRouter(n_shards=1, scheme=scheme)
    assert not one.shards_of(items, tr.mapping).any()


@pytest.mark.parametrize("scheme", SCHEMES)
def test_split_partitions_every_access_exactly_once(scheme):
    tr = trace()
    router = ShardRouter(n_shards=4, scheme=scheme)
    plan = router.split(tr)
    assert isinstance(plan, RoutingPlan)
    assert sum(len(sub) for sub in plan.subtraces) == len(tr)
    scattered = np.full(len(tr), -1, dtype=np.int64)
    for shard, idx in enumerate(plan.indices):
        assert not (scattered[idx] != -1).any(), "access routed twice"
        scattered[idx] = shard
        np.testing.assert_array_equal(
            tr.items[idx], plan.subtraces[shard].items
        )
    assert (scattered >= 0).all(), "access never routed"
    assert plan.accesses_per_shard().sum() == len(tr)


def test_hash_seed_changes_block_placement_not_integrity():
    tr = trace()
    items = np.arange(tr.mapping.universe, dtype=np.int64)
    a = ShardRouter(n_shards=8, scheme="block", seed=0)
    b = ShardRouter(n_shards=8, scheme="block", seed=1)
    assert (
        a.shards_of(items, tr.mapping) != b.shards_of(items, tr.mapping)
    ).any()
    assert b.block_split_stats(tr)["blocks_split"] == 0


def test_derived_fingerprints_are_stable_distinct_and_cheap():
    tr = zipf_items(length=3000, universe=512, alpha=1.0, block_size=8, seed=2)
    router = ShardRouter(n_shards=4, scheme="block")
    plan = router.split(tr)
    fps = [sub.fingerprint() for sub in plan.subtraces]
    assert len(set(fps)) == len(fps)
    assert tr.fingerprint() not in fps
    # Stable: re-splitting reproduces the same derived fingerprints
    # without rehashing sub-trace payloads (they come from the parent
    # fingerprint + routing identity + shard id).
    again = [sub.fingerprint() for sub in router.split(tr).subtraces]
    assert again == fps
    expected = derived_fingerprint(tr.fingerprint(), router.identity_json(), 2)
    assert fps[2] == expected
    # A different routing identity derives different sub-fingerprints.
    other = ShardRouter(n_shards=4, scheme="item").split(tr)
    assert [s.fingerprint() for s in other.subtraces] != fps


def test_unknown_scheme_rejected():
    with pytest.raises(ConfigurationError):
        ShardRouter(n_shards=2, scheme="rendezvous")
    with pytest.raises(ConfigurationError):
        ShardRouter(n_shards=0, scheme="block")

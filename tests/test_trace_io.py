"""Text trace import/export tests."""

import numpy as np
import pytest

from repro.core.mapping import FixedBlockMapping
from repro.core.readwrite import RWTrace
from repro.core.trace import Trace
from repro.errors import TraceFormatError
from repro.workloads.trace_io import (
    densify_addresses,
    read_text_trace,
    write_text_trace,
)


def test_roundtrip(tmp_path):
    mapping = FixedBlockMapping(universe=16, block_size=4)
    rw = RWTrace(
        trace=Trace(np.array([0, 5, 5, 9]), mapping),
        is_write=np.array([False, True, False, True]),
    )
    path = write_text_trace(rw, tmp_path / "t.trace")
    back = read_text_trace(path)
    assert back.trace.items.tolist() == [0, 5, 5, 9]
    assert back.is_write.tolist() == [False, True, False, True]
    assert back.trace.block_size == 4
    assert back.trace.universe == 16


def test_read_minimal_format(tmp_path):
    p = tmp_path / "min.trace"
    p.write_text("# a comment\n3\n1 w\n\n2 r\n")
    rw = read_text_trace(p, block_size=2)
    assert rw.trace.items.tolist() == [3, 1, 2]
    assert rw.is_write.tolist() == [False, True, False]
    assert rw.trace.universe == 4  # rounded to whole blocks


def test_hex_ids_supported(tmp_path):
    p = tmp_path / "hex.trace"
    p.write_text("0x10\n0x11\n")
    rw = read_text_trace(p, block_size=4)
    assert rw.trace.items.tolist() == [16, 17]


def test_bad_flag_rejected(tmp_path):
    p = tmp_path / "bad.trace"
    p.write_text("1 x\n")
    with pytest.raises(TraceFormatError, match="flag"):
        read_text_trace(p)


def test_bad_id_rejected(tmp_path):
    p = tmp_path / "bad2.trace"
    p.write_text("banana\n")
    with pytest.raises(TraceFormatError, match="bad item id"):
        read_text_trace(p)


def test_empty_rejected(tmp_path):
    p = tmp_path / "empty.trace"
    p.write_text("# nothing\n")
    with pytest.raises(TraceFormatError, match="no accesses"):
        read_text_trace(p)


def test_header_universe_respected(tmp_path):
    p = tmp_path / "u.trace"
    p.write_text("# universe: 100\n# block_size: 10\n5\n")
    rw = read_text_trace(p)
    assert rw.trace.universe == 100
    assert rw.trace.block_size == 10


def test_header_universe_too_small(tmp_path):
    p = tmp_path / "small.trace"
    p.write_text("# universe: 4\n9\n")
    with pytest.raises(TraceFormatError, match="universe"):
        read_text_trace(p, block_size=2)


class TestDensify:
    def test_preserves_block_colocation(self):
        # Addresses 1000,1001 share a block; 5000 does not.
        dense, universe = densify_addresses(
            np.array([1000, 1001, 5000, 1000]), block_size=4
        )
        assert universe == 8
        assert dense[0] // 4 == dense[1] // 4
        assert dense[0] // 4 != dense[2] // 4
        assert dense[0] == dense[3]

    def test_offsets_preserved(self):
        dense, _ = densify_addresses(np.array([1002, 1000]), block_size=4)
        assert dense[0] % 4 == 2
        assert dense[1] % 4 == 0

    def test_negative_rejected(self):
        with pytest.raises(TraceFormatError):
            densify_addresses(np.array([-1]), 4)

    def test_densify_through_reader(self, tmp_path):
        p = tmp_path / "sparse.trace"
        p.write_text("0xdeadbeef\n0xdeadbee0\n0x10\n")
        rw = read_text_trace(p, block_size=16, densify=True)
        # Two distinct blocks -> universe of 2 * 16.
        assert rw.trace.universe == 32
        # 0xdeadbeef and 0xdeadbee0 share a 16-aligned block.
        blocks = rw.trace.block_trace()
        assert blocks[0] == blocks[1] != blocks[2]


class TestErrorPaths:
    """Every malformed input is a TraceFormatError, never a bare
    ValueError/IndexError (TraceFormatError subclasses ValueError, so
    the checks assert the *specific* type)."""

    def _assert_format_error(self, path, match):
        with pytest.raises(TraceFormatError, match=match) as excinfo:
            read_text_trace(path)
        assert type(excinfo.value) is TraceFormatError

    def test_malformed_access_line(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("1\nbanana\n")
        self._assert_format_error(p, "bad item id")

    def test_too_many_fields(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("3 r extra\n")
        self._assert_format_error(p, "fields")

    def test_negative_id(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("5\n-3\n")
        self._assert_format_error(p, "non-negative")

    def test_negative_id_densify(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("-3\n")
        with pytest.raises(TraceFormatError):
            read_text_trace(p, block_size=4, densify=True)

    def test_unknown_directive(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("# blocksize: 8\n1\n")  # typo'd block_size
        self._assert_format_error(p, "unknown directive")

    def test_non_integer_directive_value(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("# universe: many\n1\n")
        self._assert_format_error(p, "needs an integer")

    def test_non_positive_directive_value(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("# block_size: 0\n1\n")
        self._assert_format_error(p, "must be >= 1")

    def test_plain_comments_still_ignored(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("# a comment without directive shape\n7\n")
        assert read_text_trace(p).trace.items.tolist() == [7]

    def test_truly_empty_file(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("")
        self._assert_format_error(p, "no accesses")

    def test_whitespace_only_file(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("\n   \n\t\n")
        self._assert_format_error(p, "no accesses")

    def test_line_numbers_reported(self, tmp_path):
        p = tmp_path / "t.trace"
        p.write_text("1\n2\nbad\n")
        with pytest.raises(TraceFormatError, match=r":3:"):
            read_text_trace(p)


def test_imported_trace_simulates(tmp_path):
    from repro.core.engine import simulate
    from repro.policies import IBLP

    p = tmp_path / "sim.trace"
    p.write_text("\n".join(str(i % 32) for i in range(200)))
    rw = read_text_trace(p, block_size=8)
    res = simulate(IBLP(16, rw.trace.mapping), rw.trace)
    assert res.accesses == 200

"""Facebook-ETC key/size model: determinism and serving integration.

The generator follows the SIGMETRICS'12 ETC characterization: Zipf
key popularity (α≈0.99) and Generalized-Pareto value sizes.  Pins:

* seeded determinism — identical arrays and trace fingerprints per
  seed, different across seeds (the satellite-1 acceptance test);
* the inverse-CDF size distribution's basic shape (support, heavy
  tail);
* the :class:`ServiceModel` size hook: legacy fixed-cost payloads are
  byte-identical (no size keys ⇒ old campaign hashes stand), while
  ``size_dist="etc"`` reweights per-item transfer cost without
  touching the cache decision stream — sizes change *latency*, never
  *policy behaviour*.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.serving import ArrivalSpec, ServiceModel, ServingConfig, serve_policy
from repro.workloads import etc_item_sizes, etc_kv_workload


def test_sizes_are_seed_deterministic():
    a = etc_item_sizes(4096, seed=3)
    b = etc_item_sizes(4096, seed=3)
    np.testing.assert_array_equal(a, b)
    c = etc_item_sizes(4096, seed=4)
    assert (a != c).any()


def test_sizes_follow_generalized_pareto_shape():
    sizes = etc_item_sizes(50_000, seed=0)
    assert (sizes >= 1.0).all()
    # Heavy tail: the mean sits far above the median, and the ETC fit's
    # mean value size is a few hundred bytes.
    assert np.median(sizes) < sizes.mean() < 2000
    assert 100 < sizes.mean()
    assert sizes.max() > 10 * sizes.mean()


def test_workload_is_seed_deterministic():
    a = etc_kv_workload(5000, universe=1024, seed=11)
    b = etc_kv_workload(5000, universe=1024, seed=11)
    assert a.fingerprint() == b.fingerprint()
    np.testing.assert_array_equal(a.items, b.items)
    assert a.metadata["generator"] == "etc_kv_workload"
    c = etc_kv_workload(5000, universe=1024, seed=12)
    assert a.fingerprint() != c.fingerprint()


def test_service_model_legacy_payload_is_untouched():
    model = ServiceModel(t_hit=1, t_miss=100, t_item=2)
    assert model.as_dict() == {
        "t_hit": 1,
        "t_miss": 100,
        "t_item": 2,
        "dist": "deterministic",
        "seed": 0,
    }
    assert model.item_weights(1024) is None
    sized = ServiceModel(t_hit=1, t_miss=100, t_item=2, size_dist="etc")
    payload = sized.as_dict()
    assert payload["size_dist"] == "etc"
    assert ServiceModel.from_dict(payload) == sized
    with pytest.raises(ConfigurationError):
        ServiceModel(size_dist="pareto")


def test_item_weights_normalize_to_mean_one():
    model = ServiceModel(size_dist="etc", size_seed=5)
    weights = model.item_weights(8192)
    assert weights.shape == (8192,)
    assert weights.min() > 0
    assert abs(weights.mean() - 1.0) < 1e-12
    np.testing.assert_array_equal(weights, model.item_weights(8192))


def config(size_dist="none"):
    return ServingConfig(
        arrival=ArrivalSpec(process="poisson", rate=0.02, seed=2),
        service=ServiceModel(
            t_hit=1.0, t_miss=50.0, t_item=2.0, size_dist=size_dist
        ),
        concurrency=3,
    )


def test_size_aware_serving_changes_latency_not_decisions():
    trace = etc_kv_workload(4000, universe=512, seed=3)
    fixed = serve_policy("iblp", 128, trace, config("none"))
    sized = serve_policy("iblp", 128, trace, config("etc"))
    # The cache stream is identical — sizes weigh transfers, they do
    # not alter hits, misses, or load sets.
    from repro.campaign.runner import result_fields

    assert result_fields(sized.sim) == result_fields(fixed.sim)
    assert sized.completions == fixed.completions
    # Heavy-tailed sizes fatten the latency tail relative to its mean
    # (p999 sits in the histograms' coarse top buckets, so p99 is the
    # robust tail probe).
    assert sized.p99 != fixed.p99
    assert (
        sized.p99 / max(sized.mean_latency, 1e-9)
        > fixed.p99 / max(fixed.mean_latency, 1e-9)
    )


def test_size_aware_serving_is_deterministic():
    trace = etc_kv_workload(3000, universe=512, seed=9)
    a = serve_policy("item-lru", 128, trace, config("etc"))
    b = serve_policy("item-lru", 128, trace, config("etc"))
    assert a.fields() == b.fields()

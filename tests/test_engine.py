"""Referee engine tests: validation, hit taxonomy, statistics."""

import numpy as np
import pytest

from repro.core.engine import Engine, simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import (
    CapacityExceeded,
    IllegalLoadSet,
    ProtocolViolation,
)
from repro.policies import BlockLRU, ItemLRU
from repro.policies.base import Policy
from repro.types import AccessOutcome, HitKind


class _ScriptedPolicy(Policy):
    """Returns pre-scripted outcomes, for referee testing."""

    name = "scripted"

    def __init__(self, capacity, mapping, script):
        super().__init__(capacity, mapping)
        self.script = list(script)
        self._resident = set()

    def access(self, item):
        outcome = self.script.pop(0)
        # Maintain an honest shadow for contains/resident_items.
        self._resident -= set(outcome.evicted)
        self._resident |= set(outcome.loaded)
        return outcome

    def contains(self, item):
        return item in self._resident

    def resident_items(self):
        return frozenset(self._resident)


@pytest.fixture
def mapping():
    return FixedBlockMapping(universe=16, block_size=4)


def _engine(mapping, script, capacity=4):
    return Engine(_ScriptedPolicy(capacity, mapping, script), mapping)


class TestRefereeValidation:
    def test_wrong_item_answered(self, mapping):
        eng = _engine(
            mapping, [AccessOutcome(item=1, hit=False, loaded=frozenset([1]))]
        )
        with pytest.raises(ProtocolViolation, match="asked"):
            eng.access(0)

    def test_false_hit_claim(self, mapping):
        eng = _engine(mapping, [AccessOutcome(item=0, hit=True)])
        with pytest.raises(ProtocolViolation, match="hit"):
            eng.access(0)

    def test_load_outside_block(self, mapping):
        out = AccessOutcome(item=0, hit=False, loaded=frozenset([0, 7]))
        eng = _engine(mapping, [out])
        with pytest.raises(IllegalLoadSet, match="outside"):
            eng.access(0)

    def test_capacity_exceeded(self, mapping):
        out = AccessOutcome(item=0, hit=False, loaded=frozenset([0, 1, 2, 3]))
        eng = _engine(mapping, [out], capacity=2)
        with pytest.raises(CapacityExceeded):
            eng.access(0)

    def test_evicting_non_resident(self, mapping):
        out = AccessOutcome(
            item=0, hit=False, loaded=frozenset([0]), evicted=frozenset([9])
        )
        eng = _engine(mapping, [out])
        with pytest.raises(ProtocolViolation, match="non-resident"):
            eng.access(0)

    def test_loading_already_resident(self, mapping):
        script = [
            AccessOutcome(item=0, hit=False, loaded=frozenset([0, 1])),
            AccessOutcome(item=2, hit=False, loaded=frozenset([1, 2])),
        ]
        eng = _engine(mapping, script)
        eng.access(0)
        with pytest.raises(ProtocolViolation, match="already-resident"):
            eng.access(2)

    def test_load_and_evict_same_item(self, mapping):
        # An item both loaded and evicted is caught by the earlier
        # checks (it is either already resident or not evictable), so
        # the dedicated guard is defense-in-depth; verify the referee
        # rejects the sequence either way.
        script = [
            AccessOutcome(item=0, hit=False, loaded=frozenset([0])),
            AccessOutcome(
                item=1,
                hit=False,
                loaded=frozenset([1]),
                evicted=frozenset([1]),
            ),
        ]
        eng = _engine(mapping, script)
        eng.access(0)
        with pytest.raises(ProtocolViolation):
            eng.access(1)

    def test_outcome_constructor_rejects_hit_with_loads(self):
        with pytest.raises(ValueError):
            AccessOutcome(item=0, hit=True, loaded=frozenset([0]))

    def test_outcome_constructor_requires_item_in_load(self):
        with pytest.raises(ValueError):
            AccessOutcome(item=0, hit=False, loaded=frozenset([1]))


class TestHitTaxonomy:
    def test_spatial_then_temporal(self, mapping):
        script = [
            AccessOutcome(item=0, hit=False, loaded=frozenset([0, 1])),
            AccessOutcome(item=1, hit=True),
            AccessOutcome(item=1, hit=True),
        ]
        eng = _engine(mapping, script)
        assert eng.access(0) is HitKind.MISS
        assert eng.access(1) is HitKind.SPATIAL_HIT
        assert eng.access(1) is HitKind.TEMPORAL_HIT

    def test_requested_item_never_spatial(self, mapping):
        script = [
            AccessOutcome(item=0, hit=False, loaded=frozenset([0, 1])),
            AccessOutcome(item=0, hit=True),
        ]
        eng = _engine(mapping, script)
        eng.access(0)
        assert eng.access(0) is HitKind.TEMPORAL_HIT

    def test_eviction_clears_spatial_pending(self, mapping):
        script = [
            AccessOutcome(item=0, hit=False, loaded=frozenset([0, 1])),
            AccessOutcome(
                item=4,
                hit=False,
                loaded=frozenset([4]),
                evicted=frozenset([1]),
            ),
            AccessOutcome(item=1, hit=False, loaded=frozenset([1])),
            AccessOutcome(item=1, hit=True),
        ]
        eng = _engine(mapping, script)
        eng.access(0)
        eng.access(4)
        assert eng.access(1) is HitKind.MISS
        # Reloaded by its own miss: hit is temporal, not spatial.
        assert eng.access(1) is HitKind.TEMPORAL_HIT


class TestSimulate:
    def test_counts_on_scan(self, medium_mapping):
        trace = Trace(np.arange(medium_mapping.universe), medium_mapping)
        res = simulate(BlockLRU(64, medium_mapping), trace)
        assert res.accesses == 1024
        assert res.misses == 1024 // 8
        assert res.spatial_hits == 1024 - 1024 // 8
        assert res.temporal_hits == 0
        assert res.hits == res.spatial_hits
        assert res.miss_ratio == pytest.approx(1 / 8)
        assert res.mean_load_size == pytest.approx(8.0)

    def test_mapping_mismatch_rejected(self, medium_mapping):
        other = FixedBlockMapping(universe=1024, block_size=4)
        trace = Trace(np.arange(16), medium_mapping)
        with pytest.raises(ProtocolViolation):
            simulate(ItemLRU(8, other), trace)

    def test_cross_check_passes_for_honest_policy(self, medium_mapping):
        trace = Trace(
            np.random.default_rng(0).integers(0, 1024, 2000), medium_mapping
        )
        res = simulate(ItemLRU(32, medium_mapping), trace, cross_check_every=100)
        assert res.accesses == 2000

    def test_on_access_observer(self, small_mapping):
        trace = Trace(np.array([0, 0, 1]), small_mapping)
        seen = []
        simulate(
            ItemLRU(4, small_mapping),
            trace,
            on_access=lambda pos, item, kind: seen.append((pos, item, kind)),
        )
        assert [s[2] for s in seen] == [
            HitKind.MISS,
            HitKind.TEMPORAL_HIT,
            HitKind.MISS,
        ]

    def test_on_access_with_cross_check(self, medium_mapping):
        """Regression: an observer must coexist with periodic
        residency reconciliation — every access observed once, in
        order, and cross-checks still pass on an honest policy."""
        trace = Trace(
            np.random.default_rng(7).integers(0, 1024, 1000), medium_mapping
        )
        seen = []
        res = simulate(
            ItemLRU(32, medium_mapping),
            trace,
            on_access=lambda pos, item, kind: seen.append((pos, item, kind)),
            cross_check_every=64,
        )
        assert len(seen) == res.accesses == 1000
        assert [s[0] for s in seen] == list(range(1000))
        assert [s[1] for s in seen] == trace.items.tolist()
        assert sum(1 for s in seen if s[2] is HitKind.MISS) == res.misses

    def test_on_access_receives_immutable_values(self, small_mapping):
        """The observer contract: only ints and HitKind cross the
        boundary, so an observer cannot mutate engine state through
        its arguments."""
        trace = Trace(np.array([0, 1, 0]), small_mapping)

        def observer(pos, item, kind):
            assert type(pos) is int
            assert type(item) is int
            assert isinstance(kind, HitKind)

        simulate(ItemLRU(4, small_mapping), trace, on_access=observer)

    def test_merged_results(self, small_mapping):
        t1 = Trace(np.array([0, 1]), small_mapping)
        t2 = Trace(np.array([2, 3]), small_mapping)
        r1 = simulate(ItemLRU(4, small_mapping), t1)
        r2 = simulate(ItemLRU(4, small_mapping), t2)
        merged = r1.merged_with(r2)
        assert merged.accesses == 4
        assert merged.misses == r1.misses + r2.misses

    def test_merge_rejects_mismatched_config(self, small_mapping):
        t = Trace(np.array([0]), small_mapping)
        r1 = simulate(ItemLRU(4, small_mapping), t)
        r2 = simulate(ItemLRU(8, small_mapping), t)
        with pytest.raises(ValueError):
            r1.merged_with(r2)

"""Property-based tests over the simulator's core invariants.

These drive every online policy with hypothesis-generated traces under
full referee validation + residency cross-checks, and assert the model
invariants the theory relies on:

* occupancy never exceeds k (referee-enforced);
* misses are bounded below by cold misses at block granularity and
  above by the trace length;
* determinism: identical runs produce identical statistics;
* the exact offline solver is never beaten by any online policy;
* hit taxonomy accounting is consistent;
* differential conformance: the fast replay kernels are bit-identical
  to the referee on arbitrary (trace, policy, k, B) configurations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conformance import check_conformance
from repro.core.engine import simulate
from repro.core.fast import FAST_POLICY_NAMES
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.offline.exact import solve_gc_exact
from repro.offline.lower_bounds import gc_opt_lower
from repro.offline.heuristics import gc_opt_upper
from repro.policies import make_policy, policy_names

ONLINE_POLICIES = sorted(
    name for name in policy_names() if not name.startswith("belady")
)

_trace_strategy = st.lists(st.integers(0, 31), min_size=1, max_size=120)
_capacity_strategy = st.integers(1, 24)


def _make_trace(items):
    mapping = FixedBlockMapping(universe=32, block_size=4)
    return Trace(np.asarray(items, dtype=np.int64), mapping)


@pytest.mark.parametrize("name", ONLINE_POLICIES)
@settings(max_examples=25, deadline=None)
@given(items=_trace_strategy, k=_capacity_strategy)
def test_policy_respects_model_invariants(name, items, k):
    trace = _make_trace(items)
    policy = make_policy(name, k, trace.mapping)
    res = simulate(policy, trace, cross_check_every=7)
    assert res.accesses == len(items)
    assert res.misses + res.hits == res.accesses
    assert res.misses >= trace.distinct_blocks() if k >= 4 else True
    assert res.loaded_items >= res.misses
    assert res.evicted_items <= res.loaded_items


@pytest.mark.parametrize("name", ONLINE_POLICIES)
@settings(max_examples=10, deadline=None)
@given(items=_trace_strategy, k=_capacity_strategy)
def test_policy_is_deterministic(name, items, k):
    trace = _make_trace(items)
    first = simulate(make_policy(name, k, trace.mapping), trace)
    second = simulate(make_policy(name, k, trace.mapping), trace)
    assert first.misses == second.misses
    assert first.spatial_hits == second.spatial_hits


@settings(max_examples=20, deadline=None)
@given(
    items=st.lists(st.integers(0, 7), min_size=1, max_size=14),
    k=st.integers(1, 4),
)
def test_exact_opt_bracket(items, k):
    """lower <= exact <= heuristic upper, and no online policy beats exact."""
    mapping = FixedBlockMapping(universe=8, block_size=4)
    trace = Trace(np.asarray(items, dtype=np.int64), mapping)
    exact = solve_gc_exact(trace, k)
    assert gc_opt_lower(trace, k) <= exact <= gc_opt_upper(trace, k)
    for name in ("item-lru", "block-lru", "iblp", "gcm"):
        online = simulate(
            make_policy(name, k, mapping), trace
        ).misses
        assert online >= exact


@settings(max_examples=20, deadline=None)
@given(items=st.lists(st.integers(0, 31), min_size=1, max_size=100))
def test_bigger_caches_do_not_hurt_lru(items):
    """LRU has the inclusion property: misses decrease with capacity."""
    trace = _make_trace(items)
    misses = [
        simulate(make_policy("item-lru", k, trace.mapping), trace).misses
        for k in (2, 4, 8, 16)
    ]
    assert all(a >= b for a, b in zip(misses, misses[1:]))


@settings(max_examples=20, deadline=None)
@given(items=st.lists(st.integers(0, 31), min_size=1, max_size=100))
def test_spatial_hits_only_from_side_loads(items):
    """Item caches never record spatial hits; block loaders may."""
    trace = _make_trace(items)
    res_item = simulate(make_policy("item-lru", 8, trace.mapping), trace)
    assert res_item.spatial_hits == 0
    res_blk = simulate(make_policy("block-lru", 8, trace.mapping), trace)
    assert res_blk.spatial_hits >= 0


@settings(max_examples=20, deadline=None)
@given(
    items=st.lists(st.integers(0, 31), min_size=1, max_size=80),
    split=st.integers(0, 12),
)
def test_iblp_split_stays_within_capacity(items, split):
    trace = _make_trace(items)
    policy = make_policy("iblp", 12, trace.mapping, item_layer_size=split)
    res = simulate(policy, trace, cross_check_every=5)
    assert res.accesses == len(items)


@pytest.mark.parametrize("name", FAST_POLICY_NAMES)
@settings(max_examples=25, deadline=None)
@given(
    items=st.lists(st.integers(0, 31), min_size=0, max_size=120),
    k=_capacity_strategy,
    B=st.integers(1, 8),
)
def test_fast_kernels_conform_to_referee(name, items, k, B):
    """Differential property: referee and kernel replays are
    bit-identical — every SimResult field and the entire per-access
    outcome stream — on arbitrary (trace, k, B) configurations."""
    # universe=32 with B in 1..8 includes non-divisible geometries, so
    # ragged final blocks are part of the property space.
    trace = Trace(np.asarray(items, dtype=np.int64), FixedBlockMapping(32, B))
    report = check_conformance(name, k, trace, cross_check_every=7)
    assert report.ok, str(report)


@settings(max_examples=25, deadline=None)
@given(
    items=st.lists(st.integers(0, 31), min_size=0, max_size=120),
    k=_capacity_strategy,
    a=st.integers(1, 6),
    split_frac=st.floats(0.0, 1.0),
)
def test_fast_kernel_parameter_families_conform(items, k, a, split_frac):
    """The parameterized kernels (a-threshold, IBLP splits) conform at
    arbitrary parameter values, not just the defaults."""
    trace = _make_trace(items)
    report = check_conformance("athreshold-lru", k, trace, a=a)
    assert report.ok, str(report)
    report = check_conformance(
        "iblp", k, trace, item_layer_size=int(split_frac * k)
    )
    assert report.ok, str(report)


@settings(max_examples=15, deadline=None)
@given(items=st.lists(st.integers(0, 31), min_size=2, max_size=80))
def test_trace_save_load_roundtrip(tmp_path_factory, items):
    trace = _make_trace(items)
    path = tmp_path_factory.mktemp("traces") / "t.npz"
    trace.save(path)
    loaded = Trace.load(path)
    assert loaded.items.tolist() == trace.items.tolist()
    res_a = simulate(make_policy("iblp", 8, trace.mapping), trace)
    res_b = simulate(make_policy("iblp", 8, loaded.mapping), loaded)
    assert res_a.misses == res_b.misses

"""Compiled-trace (.rtc) format tests: round-trip, fingerprint parity,
mmap replay bit-identity, the stale-memo regression, arena handles,
and campaign integration (zero-recompute resume over the same file)."""

import numpy as np
import pytest

from repro.campaign import CampaignRunner, CampaignSpec, TraceSpec
from repro.core import arena
from repro.core.conformance import (
    assert_mmap_conformant,
    mmap_conformance_suite,
)
from repro.core.fast import (
    FAST_POLICY_NAMES,
    compile_trace,
    fast_simulate,
    multi_capacity_replay,
    multi_policy_replay,
)
from repro.core.mapping import FixedBlockMapping
from repro.core.rtc import (
    RTC_MAGIC,
    RtcWriter,
    file_memo_key,
    open_rtc,
    rtc_info,
    trace_to_rtc,
)
from repro.core.trace import Trace
from repro.errors import ConfigurationError, TraceFormatError
from repro.policies import make_policy
from repro.workloads import markov_spatial, zipf_items


def small_trace(length=6000, universe=1024, block_size=8, seed=2):
    return zipf_items(
        length=length, universe=universe, block_size=block_size,
        alpha=0.9, seed=seed,
    )


# -- format round-trip -------------------------------------------------------


def test_roundtrip_preserves_trace(tmp_path):
    trace = small_trace()
    path = trace_to_rtc(trace, tmp_path / "t.rtc")
    loaded = open_rtc(path)
    assert np.array_equal(np.asarray(loaded.items), np.asarray(trace.items))
    assert loaded.mapping.universe == trace.mapping.universe
    assert loaded.mapping.max_block_size == trace.mapping.max_block_size
    assert loaded.metadata == trace.metadata


def test_fingerprint_parity_with_in_memory(tmp_path):
    """Conversion must not change identity: campaign cells memoize across
    the on-disk and in-memory representations."""
    trace = small_trace()
    loaded = open_rtc(trace_to_rtc(trace, tmp_path / "t.rtc"))
    assert loaded.fingerprint() == trace.fingerprint()


def test_rtc_info_reads_header_only(tmp_path):
    trace = small_trace(length=500)
    path = trace_to_rtc(trace, tmp_path / "t.rtc")
    info = rtc_info(path)
    assert info["n"] == 500
    assert info["block_size"] == 8
    assert info["fingerprint"] == trace.fingerprint()
    assert info["file_bytes"] == path.stat().st_size


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "bogus.rtc"
    path.write_bytes(b"NOPE" + b"\x00" * 64)
    with pytest.raises(TraceFormatError, match="not an .rtc file"):
        open_rtc(path)


def test_truncated_columns_rejected(tmp_path):
    trace = small_trace(length=2000)
    path = trace_to_rtc(trace, tmp_path / "t.rtc")
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(TraceFormatError, match="truncated"):
        open_rtc(path)


def test_writer_rejects_negative_items(tmp_path):
    writer = RtcWriter(tmp_path / "t.rtc", block_size=4)
    with pytest.raises(TraceFormatError, match="non-negative"):
        writer.append(np.asarray([1, -2, 3]))
    writer.abort()


def test_writer_empty_is_format_error(tmp_path):
    writer = RtcWriter(tmp_path / "t.rtc", block_size=4)
    with pytest.raises(TraceFormatError, match="no accesses"):
        writer.finalize()
    assert not (tmp_path / "t.rtc").exists()


def test_magic_constant_spelled():
    assert RTC_MAGIC == b"RTC1"


# -- stale-memo regression ---------------------------------------------------


def test_edited_rtc_gets_fresh_compilation(tmp_path):
    """Editing column bytes in place must never serve a stale compiled
    trace.  The header fingerprint cannot see such an edit (it is not
    recomputed from the columns on open), so the compile memo keys mmap
    traces by file digest + mtime + size instead of by fingerprint."""
    items = np.arange(64, dtype=np.int64) % 32
    trace = Trace(items, FixedBlockMapping(universe=32, block_size=4))
    path = trace_to_rtc(trace, tmp_path / "t.rtc")

    first = open_rtc(path)
    compiled = compile_trace(first)
    col_offset = first._rtc.items.offset
    assert next(iter(compiled.iter_chunks()))[0][0] == 0

    # In-place edit of the first item (0 -> 1, same block): header —
    # including the stored fingerprint — is untouched.
    with open(path, "r+b") as fh:
        fh.seek(col_offset)
        fh.write(np.int64(1).tobytes())

    second = open_rtc(path)
    assert second.fingerprint() == first.fingerprint()  # header lies
    assert second._memo_key != first._memo_key  # memo key does not
    recompiled = compile_trace(second)
    assert next(iter(recompiled.iter_chunks()))[0][0] == 1


def test_file_memo_key_tracks_mtime(tmp_path):
    trace = small_trace(length=200)
    path = trace_to_rtc(trace, tmp_path / "t.rtc")
    rtc = open_rtc(path)._rtc
    key = file_memo_key(path, rtc.header_bytes)
    import os

    os.utime(path, ns=(rtc.mtime_ns + 10, rtc.mtime_ns + 10))
    assert file_memo_key(path, rtc.header_bytes) != key


# -- mmap replay bit-identity ------------------------------------------------


def test_mmap_replay_bit_identical_all_policies(tmp_path):
    """Acceptance criterion: replay over an mmap-backed .rtc trace is
    bit-identical to the in-memory trace for every registered policy."""
    traces = {
        "zipf": small_trace(),
        "markov": markov_spatial(
            length=6000, universe=1024, block_size=8, stay=0.8, seed=3
        ),
    }
    rows = mmap_conformance_suite(traces, [64, 256], tmp_path)
    assert len(rows) == len(traces) * len(FAST_POLICY_NAMES) * 2
    bad = [r for r in rows if not r["ok"]]
    assert not bad, bad


def test_assert_mmap_conformant_single_cell(tmp_path):
    trace = small_trace(length=3000)
    mm = open_rtc(trace_to_rtc(trace, tmp_path / "t.rtc"))
    report = assert_mmap_conformant("iblp", 128, trace, mm)
    assert report.ok and report.accesses == 3000


def test_mmap_conformance_rejects_different_traces(tmp_path):
    a = small_trace(seed=1)
    b = open_rtc(trace_to_rtc(small_trace(seed=2), tmp_path / "b.rtc"))
    with pytest.raises(ConfigurationError, match="same logical trace"):
        assert_mmap_conformant("item-lru", 64, a, b)


def test_mmap_multi_capacity_and_multi_policy_parity(tmp_path):
    trace = small_trace()
    mm = open_rtc(trace_to_rtc(trace, tmp_path / "t.rtc"))
    caps = [32, 128, 512]
    mem = multi_capacity_replay("item-lru", trace, caps)
    mmr = multi_capacity_replay("item-lru", mm, caps)
    assert {k: r.as_row() for k, r in mem.items()} == {
        k: r.as_row() for k, r in mmr.items()
    }
    cells = [("item-lru", 64), ("block-lru", 64), ("iblp", 128)]
    mem_rows = [r.as_row() for r in multi_policy_replay(cells, trace)]
    mm_rows = [r.as_row() for r in multi_policy_replay(cells, mm)]
    assert mem_rows == mm_rows


def test_fast_simulate_streams_mmap_chunked(tmp_path):
    """A chunk far smaller than the trace still replays identically —
    the kernels are resumable steppers, so traversal granularity is
    invisible."""
    trace = small_trace(length=5000)
    mm = open_rtc(trace_to_rtc(trace, tmp_path / "t.rtc"))
    compiled = compile_trace(mm)
    seen = 0
    for items_c, _blocks_c, _dense_c in compiled.iter_chunks(512):
        assert len(items_c) <= 512
        seen += len(items_c)
    assert seen == 5000
    policy = make_policy("block-lru", 128, mm.mapping)
    ref = fast_simulate(make_policy("block-lru", 128, trace.mapping), trace)
    got = fast_simulate(policy, mm)
    assert got.as_row() == ref.as_row()


# -- arena handles -----------------------------------------------------------


def test_mmap_handle_round_trip(tmp_path):
    trace = small_trace(length=2000)
    mm = open_rtc(trace_to_rtc(trace, tmp_path / "t.rtc"))
    handle = arena.mmap_handle(mm)
    assert handle is not None and handle.kind == "rtc"
    assert arena.mmap_handle(trace) is None  # plain traces publish via shm
    try:
        attached = arena.attach(handle)
        assert attached.fingerprint() == trace.fingerprint()
        assert np.array_equal(
            np.asarray(attached.items), np.asarray(trace.items)
        )
        assert arena.attach(handle) is attached  # per-process cache
    finally:
        arena.detach_all()


def test_attach_rejects_changed_rtc(tmp_path):
    trace = small_trace(length=2000)
    path = trace_to_rtc(trace, tmp_path / "t.rtc")
    handle = arena.mmap_handle(open_rtc(path))
    trace_to_rtc(small_trace(length=2000, seed=9), path)
    try:
        with pytest.raises(ConfigurationError, match="changed since"):
            arena.attach(handle)
    finally:
        arena.detach_all()


# -- campaign integration ----------------------------------------------------


def test_trace_spec_rtc_round_trip(tmp_path):
    trace = small_trace(length=1500)
    path = trace_to_rtc(trace, tmp_path / "t.rtc")
    spec = TraceSpec(kind="rtc", path=str(path))
    assert spec.materialize().fingerprint() == trace.fingerprint()
    again = TraceSpec.from_dict(spec.as_dict())
    assert again.kind == "rtc" and again.path == str(path)
    assert spec.as_dict() == {"kind": "rtc", "path": str(path)}


def test_trace_spec_rtc_missing_file(tmp_path):
    with pytest.raises(ConfigurationError, match="does not exist"):
        TraceSpec(kind="rtc", path=str(tmp_path / "gone.rtc")).materialize()


def test_campaign_resume_recomputes_zero_cells(tmp_path):
    """Acceptance criterion: a campaign resumed against the same .rtc
    file recomputes nothing — the mmap trace fingerprints identically
    run over run, so every cell is a memo hit."""
    trace = small_trace(length=2500)
    path = trace_to_rtc(trace, tmp_path / "t.rtc")
    spec = CampaignSpec.from_grid(
        name="rtc",
        policies=["item-lru", "block-lru"],
        capacities=[32, 128],
        traces={"t": TraceSpec(kind="rtc", path=str(path))},
        fast=True,
    )
    camp_dir = tmp_path / "camp"
    with CampaignRunner(camp_dir, spec, store_sync=False) as runner:
        first = runner.run()
    assert first.computed == 4 and first.memo_hits == 0
    with CampaignRunner(camp_dir, spec, store_sync=False) as runner:
        second = runner.run()
    assert second.computed == 0 and second.memo_hits == 4
    rows_first = sorted(
        (o.cell.policy, o.cell.capacity, o.result.miss_ratio)
        for o in first.done
    )
    rows_second = sorted(
        (o.cell.policy, o.cell.capacity, o.result.miss_ratio)
        for o in second.done
    )
    assert rows_first == rows_second


def test_campaign_parallel_ships_mmap_handles(tmp_path):
    trace = small_trace(length=2500)
    path = trace_to_rtc(trace, tmp_path / "t.rtc")
    spec = CampaignSpec.from_grid(
        name="rtc-par",
        policies=["item-lru", "iblp"],
        capacities=[64],
        traces={"t": TraceSpec(kind="rtc", path=str(path))},
        fast=True,
    )
    with CampaignRunner(
        tmp_path / "camp", spec, parallel=True, max_workers=2, store_sync=False
    ) as runner:
        report = runner.run()
        payload = runner._trace_payloads["t"]
    assert isinstance(payload, arena.ArenaHandle) and payload.kind == "rtc"
    assert report.computed == 2 and not report.quarantined

"""Marking, GCM and MarkAllGCM tests (§6)."""

import numpy as np
import pytest

from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.policies import GCM, MarkAllGCM, MarkingLRU


@pytest.fixture
def mapping():
    return FixedBlockMapping(universe=64, block_size=4)


class TestMarkingLRU:
    def test_loads_single_item(self, mapping):
        p = MarkingLRU(8, mapping)
        out = p.access(0)
        assert out.loaded == frozenset([0])

    def test_marks_on_request(self, mapping):
        p = MarkingLRU(8, mapping)
        p.access(0)
        assert 0 in p.marked_items()

    def test_evicts_unmarked_first(self, mapping):
        p = MarkingLRU(2, mapping)
        p.access(0)
        p.access(4)
        # New phase triggers when all are marked; before that, both are
        # marked so phase clears, then LRU-unmarked (0) goes.
        out = p.access(8)
        assert out.evicted == frozenset([0])

    def test_phase_reset_when_all_marked(self, mapping):
        p = MarkingLRU(2, mapping)
        p.access(0)
        p.access(4)
        assert p.marked_items() == frozenset([0, 4])
        p.access(8)  # forces phase clear + eviction
        assert 8 in p.marked_items()

    def test_referee_validates(self, mapping):
        trace = Trace(
            np.random.default_rng(0).integers(0, 64, 1500, dtype=np.int64),
            mapping,
        )
        res = simulate(MarkingLRU(9, mapping), trace, cross_check_every=97)
        assert res.accesses == 1500


class TestGCM:
    def test_loads_block_marks_only_requested(self, mapping):
        p = GCM(16, mapping, seed=0)
        out = p.access(1)
        assert out.loaded == frozenset([0, 1, 2, 3])
        assert p.marked_items() == frozenset([1])

    def test_side_loads_are_eviction_candidates(self, mapping):
        p = GCM(4, mapping, seed=0)
        p.access(0)  # loads block 0 (4 items), marks 0
        out = p.access(4)  # must displace unmarked side-loads, never 0
        assert 0 not in out.evicted
        assert p.contains(0)
        assert p.contains(4)

    def test_markall_variant_marks_side_loads(self, mapping):
        p = MarkAllGCM(16, mapping, seed=0)
        p.access(1)
        assert p.marked_items() == frozenset([0, 1, 2, 3])

    def test_seed_determinism(self, mapping):
        trace = Trace(
            np.random.default_rng(2).integers(0, 64, 800, dtype=np.int64),
            mapping,
        )
        a = simulate(GCM(12, mapping, seed=42), trace).misses
        b = simulate(GCM(12, mapping, seed=42), trace).misses
        assert a == b

    def test_spatial_hits_on_scan(self, mapping):
        trace = Trace(np.arange(64), mapping)
        res = simulate(GCM(16, mapping, seed=1), trace)
        assert res.misses == 16
        assert res.spatial_hits == 48

    def test_capacity_one_degenerates(self, mapping):
        trace = Trace(np.array([0, 1, 0, 1]), mapping)
        res = simulate(GCM(1, mapping, seed=0), trace)
        assert res.misses == 4  # no room for any side load

    def test_block_oblivious_marking_pays_b_per_block(self, mapping):
        """§6: plain marking misses B times where GCM misses once."""
        trace = Trace(np.arange(64), mapping)  # whole-block walk
        marking = simulate(MarkingLRU(16, mapping), trace).misses
        gcm = simulate(GCM(16, mapping, seed=0), trace).misses
        assert marking == 64
        assert gcm == 16
        assert marking == mapping.max_block_size * gcm

    def test_markall_pollutes_on_sparse_traffic(self, mapping):
        """Marking side loads shrinks the effective phase (§6)."""
        # One item per block: side loads are pure pollution.
        items = np.arange(0, 64, 4)
        trace = Trace(np.tile(items, 30), mapping)
        k = 8
        gcm = simulate(GCM(k, mapping, seed=3), trace).misses
        markall = simulate(MarkAllGCM(k, mapping, seed=3), trace).misses
        assert gcm <= markall

    def test_referee_validates(self, mapping):
        trace = Trace(
            np.random.default_rng(8).integers(0, 64, 1500, dtype=np.int64),
            mapping,
        )
        for cls in (GCM, MarkAllGCM):
            res = simulate(cls(10, mapping, seed=5), trace, cross_check_every=71)
            assert res.accesses == 1500

    def test_reset_restores_seed(self, mapping):
        p = GCM(8, mapping, seed=13)
        trace = Trace(
            np.random.default_rng(1).integers(0, 64, 500, dtype=np.int64),
            mapping,
        )
        first = simulate(p, trace).misses
        p.reset()
        assert simulate(p, trace).misses == first

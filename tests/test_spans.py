"""Hierarchical span tracing: nesting, cross-process propagation,
Chrome trace export, and the ambient no-op path."""

import json
import os
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs.trace_export import export_chrome_trace, load_spans, to_chrome_trace
from repro.telemetry import spans
from repro.telemetry.spans import Span, SpanContext, SpanTracer


def read_records(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def by_name(records):
    out = {}
    for record in records:
        out.setdefault(record["name"], []).append(record)
    return out


@pytest.fixture(autouse=True)
def no_ambient_tracer():
    """Every test starts and ends with the ambient tracer off."""
    spans.disable()
    yield
    spans.disable()


class TestNesting:
    def test_parent_ids_follow_lexical_nesting(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanTracer.to_path(path) as tracer:
            with tracer.span("a") as a:
                with tracer.span("b") as b:
                    with tracer.span("c") as c:
                        pass
                with tracer.span("b2") as b2:
                    pass
        names = by_name(read_records(path))
        assert set(names) == {"a", "b", "c", "b2"}
        assert names["a"][0]["parent_id"] is None
        assert names["b"][0]["parent_id"] == a.span_id
        assert names["c"][0]["parent_id"] == b.span_id
        # A sibling opened after b closed parents to a, not to b.
        assert names["b2"][0]["parent_id"] == a.span_id
        assert {r["trace_id"] for rs in names.values() for r in rs} == {
            tracer.trace_id
        }
        assert c.seconds >= 0

    def test_attributes_and_error_recording(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanTracer.to_path(path) as tracer:
            with tracer.span("ok", policy="item-lru") as sp:
                sp.set("misses", 7)
            with pytest.raises(ValueError):
                with tracer.span("boom"):
                    raise ValueError("nope")
        names = by_name(read_records(path))
        assert names["ok"][0]["attrs"] == {"policy": "item-lru", "misses": 7}
        assert names["boom"][0]["attrs"]["error"] == "ValueError: nope"

    def test_explicit_parent_and_pinned_span_id(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanTracer.to_path(path) as tracer:
            remote = SpanContext(trace_id=tracer.trace_id, span_id="feed" * 4)
            with tracer.span("pinned", parent=remote, span_id="beef" * 4):
                pass
        record = read_records(path)[0]
        assert record["span_id"] == "beef" * 4
        assert record["parent_id"] == "feed" * 4

    def test_thread_gets_its_own_stack(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        seen = {}
        with SpanTracer.to_path(path) as tracer:
            with tracer.span("main-span"):

                def worker():
                    with tracer.span("thread-span") as sp:
                        seen["parent"] = sp.parent_id

                t = threading.Thread(target=worker)
                t.start()
                t.join()
        # The thread did not inherit the main thread's open span.
        assert seen["parent"] is None

    def test_span_roundtrip(self):
        sp = Span(
            name="x",
            trace_id="t" * 16,
            span_id="s" * 16,
            parent_id=None,
            start=12.5,
            seconds=0.25,
            pid=1,
            tid=2,
            attributes={"k": 3},
        )
        assert Span.from_record(sp.as_record()) == sp


def _pool_worker(payload):
    """Joins the parent's trace from another process (args are pickled
    by the executor even under the fork start method)."""
    path, ctx_dict = payload
    context = SpanContext.from_dict(ctx_dict)
    spans.enable(path, root=context, append=True)
    try:
        with spans.span("pool-work", worker=os.getpid()):
            with spans.span("pool-inner"):
                pass
    finally:
        spans.disable()
    return os.getpid()


class TestProcessPropagation:
    def test_span_context_pickles(self):
        ctx = SpanContext(trace_id="a" * 16, span_id="b" * 16)
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_parent_ids_survive_the_worker_boundary(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = spans.enable(path)
        with spans.span("orchestrate") as parent:
            ctx = spans.current_context()
            assert ctx == parent.context
            payload = (str(path), ctx.as_dict())
            with ProcessPoolExecutor(max_workers=2) as pool:
                pids = list(pool.map(_pool_worker, [payload] * 3))
        spans.disable()

        names = by_name(read_records(path))
        assert len(names["pool-work"]) == 3
        assert len(names["pool-inner"]) == 3
        for record in names["pool-work"]:
            assert record["parent_id"] == parent.span_id
            assert record["trace_id"] == tracer.trace_id
            assert record["pid"] in pids
        inner_parents = {r["parent_id"] for r in names["pool-inner"]}
        assert inner_parents == {r["span_id"] for r in names["pool-work"]}
        # Concurrent appenders never tear lines: every record parsed.
        assert names["orchestrate"][0]["parent_id"] is None


class TestAmbient:
    def test_disabled_is_a_noop(self):
        assert not spans.enabled()
        assert spans.get_tracer() is None
        assert spans.current_context() is None
        with spans.span("nothing", k=1) as sp:
            assert sp is None
        spans.annotate(ignored=True)  # must not raise

    def test_enable_records_and_annotate_reaches_open_span(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        spans.enable(path)
        assert spans.enabled()
        with spans.span("work") as sp:
            spans.annotate(extra="yes")
            assert sp.attributes["extra"] == "yes"
        spans.disable()
        assert read_records(path)[0]["attrs"] == {"extra": "yes"}

    def test_enable_does_not_close_the_previous_tracer(self, tmp_path):
        first = spans.enable(tmp_path / "one.jsonl")
        spans.enable(tmp_path / "two.jsonl")
        assert not first._closed
        first.close()
        spans.disable()


class TestChromeExport:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanTracer.to_path(path) as tracer:
            with tracer.span("outer", policy="iblp"):
                with tracer.span("inner"):
                    pass

        loaded = load_spans(path)
        assert [s.name for s in loaded] == ["inner", "outer"]

        trace = to_chrome_trace(loaded)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in events} == {"outer", "inner"}
        assert meta and meta[0]["name"] == "process_name"
        # Timestamps are rebased to the earliest span and in µs.
        assert min(e["ts"] for e in events) == 0.0
        outer = next(e for e in events if e["name"] == "outer")
        inner = next(e for e in events if e["name"] == "inner")
        assert outer["args"]["parent_id"] is None
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["args"]["policy"] == "iblp"
        assert outer["dur"] >= inner["dur"] >= 0

    def test_export_writes_loadable_json(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with SpanTracer.to_path(path) as tracer:
            with tracer.span("only"):
                pass
        out = tmp_path / "trace.json"
        text = export_chrome_trace(path, out=out)
        assert json.loads(text) == json.loads(out.read_text())
        assert json.loads(text)["displayTimeUnit"] == "ms"

    def test_telemetry_records_are_ignored(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            json.dumps({"type": "window", "miss_ratio": 0.5})
            + "\n"
            + json.dumps(
                Span(
                    name="real",
                    trace_id="t" * 16,
                    span_id="s" * 16,
                    parent_id=None,
                    start=1.0,
                    seconds=0.1,
                ).as_record()
            )
            + "\n"
        )
        assert [s.name for s in load_spans(path)] == ["real"]

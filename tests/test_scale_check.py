"""Scale-stability experiment tests (DESIGN's substitution claim)."""

import pytest

from repro.experiments import scale_check


def test_single_cell_fidelity():
    row = scale_check.scale_cell(k=128, h_frac=0.25, B=8, cycles=2)
    assert 0.85 <= row["thm2_fidelity"] <= 1.02
    assert 0.85 <= row["thm4_fidelity"] <= 1.02


def test_fidelity_stable_across_scales():
    rows = scale_check.run(parallel=False, cycles=2)
    assert len(rows) == 16
    for row in rows:
        assert 0.85 <= row["thm2_fidelity"] <= 1.02, row
        assert 0.85 <= row["thm4_fidelity"] <= 1.02, row


def test_fidelity_improves_with_scale():
    """The ceil-slop shrinks as (k-h+1)/B grows."""
    small = scale_check.scale_cell(k=64, h_frac=0.25, B=8, cycles=2)
    large = scale_check.scale_cell(k=512, h_frac=0.25, B=8, cycles=2)
    assert large["thm2_fidelity"] >= small["thm2_fidelity"] - 0.02


def test_parallel_matches_serial():
    serial = scale_check.run(parallel=False, cycles=2)
    parallel = scale_check.run(parallel=True, cycles=2)
    assert serial == parallel


def test_render_reports_worst(capsys=None):
    text = scale_check.render()
    assert "worst fidelity" in text

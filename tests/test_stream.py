"""Streaming ingestion tests: chunked parsers (text/MSR/KV), gzip
sniffing, access windows, streaming densification parity, and the
one-pass .rtc converter's fingerprint parity with the in-memory path."""

import gzip

import numpy as np
import pytest

from repro.core.rtc import open_rtc
from repro.errors import ConfigurationError, TraceFormatError
from repro.workloads import markov_spatial
from repro.workloads.stream import (
    KvTraceStream,
    MsrTraceStream,
    StreamingDensifier,
    TextTraceStream,
    convert_to_rtc,
    sample_trace,
)
from repro.workloads.trace_io import (
    densify_addresses,
    read_text_trace,
    write_text_trace,
)


def write_lines(path, lines):
    path.write_text("\n".join(lines) + "\n")
    return path


def collect(stream):
    chunks = list(stream)
    if not chunks:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
    return (
        np.concatenate([c.items for c in chunks]),
        np.concatenate([c.writes for c in chunks]),
    )


# -- text parser -------------------------------------------------------------


def test_text_stream_chunks_preserve_order(tmp_path):
    path = write_lines(tmp_path / "t.txt", [str(i % 7) for i in range(100)])
    items, writes = collect(TextTraceStream(path, chunk=9))
    assert items.tolist() == [i % 7 for i in range(100)]
    assert not writes.any()


def test_text_stream_reads_directives(tmp_path):
    path = write_lines(
        tmp_path / "t.txt",
        ["# universe: 64", "# block_size: 4", "1 r", "2 w", "3"],
    )
    stream = TextTraceStream(path)
    items, writes = collect(stream)
    assert stream.header_universe == 64
    assert stream.header_block == 4
    assert items.tolist() == [1, 2, 3]
    assert writes.tolist() == [False, True, False]


def test_text_stream_line_numbers_cross_chunks(tmp_path):
    lines = [str(i) for i in range(50)] + ["oops"]
    path = write_lines(tmp_path / "t.txt", lines)
    with pytest.raises(TraceFormatError, match=rf"{path}:51: bad item id"):
        collect(TextTraceStream(path, chunk=8))


def test_text_stream_bad_flag(tmp_path):
    path = write_lines(tmp_path / "t.txt", ["1 r", "2 x"])
    with pytest.raises(TraceFormatError, match="flag must be r or w"):
        collect(TextTraceStream(path))


def test_text_stream_unknown_directive(tmp_path):
    path = write_lines(tmp_path / "t.txt", ["# blocksize: 8", "1"])
    with pytest.raises(TraceFormatError, match="unknown directive"):
        collect(TextTraceStream(path))


def test_gzip_sniffed_by_magic_not_extension(tmp_path):
    body = "# block_size: 4\n" + "\n".join(str(i % 9) for i in range(40)) + "\n"
    path = tmp_path / "t.txt"  # deliberately no .gz suffix
    path.write_bytes(gzip.compress(body.encode()))
    rw = read_text_trace(path)
    assert rw.trace.items.tolist() == [i % 9 for i in range(40)]
    assert rw.trace.block_size == 4


def test_window_matches_slice_of_full_read(tmp_path):
    full_items = [(i * 13) % 31 for i in range(200)]
    path = write_lines(tmp_path / "t.txt", [str(x) for x in full_items])
    whole = read_text_trace(path, block_size=1)
    window = read_text_trace(path, block_size=1, offset=40, limit=25)
    assert window.trace.items.tolist() == full_items[40:65]
    assert len(whole.trace) == 200


def test_window_stops_reading_early(tmp_path):
    # A malformed line *after* the window must never be reached.
    path = write_lines(tmp_path / "t.txt", ["1", "2", "3", "oops"])
    rw = read_text_trace(path, limit=2)
    assert rw.trace.items.tolist() == [1, 2]


def test_empty_window_is_format_error(tmp_path):
    path = write_lines(tmp_path / "t.txt", ["1", "2"])
    with pytest.raises(TraceFormatError, match="no accesses in window"):
        read_text_trace(path, offset=5)


def test_negative_window_rejected(tmp_path):
    path = write_lines(tmp_path / "t.txt", ["1"])
    with pytest.raises(ConfigurationError, match="offset must be >= 0"):
        TextTraceStream(path, offset=-1)
    with pytest.raises(ConfigurationError, match="limit must be >= 0"):
        TextTraceStream(path, limit=-1)


# -- MSR block-storage parser ------------------------------------------------


def test_msr_expands_byte_ranges_to_pages(tmp_path):
    path = write_lines(
        tmp_path / "m.csv",
        [
            "128166372003061629,src1,0,Read,0,8192,100",
            "128166372003061630,src1,0,Write,4096,4097",
            "128166372003061631,src1,0,Read,12288,1",
        ],
    )
    items, writes = collect(MsrTraceStream(path, page_bytes=4096))
    assert items.tolist() == [0, 1, 1, 2, 3]
    assert writes.tolist() == [False, False, True, True, False]


def test_msr_rejects_bad_type(tmp_path):
    path = write_lines(tmp_path / "m.csv", ["1,h,0,Flush,0,512"])
    with pytest.raises(TraceFormatError, match="type must be Read or Write"):
        collect(MsrTraceStream(path))


def test_msr_rejects_short_record(tmp_path):
    path = write_lines(tmp_path / "m.csv", ["1,h,0,Read"])
    with pytest.raises(TraceFormatError, match="expected"):
        collect(MsrTraceStream(path))


# -- memcached-style KV parser -----------------------------------------------


def test_kv_ops_and_stable_hashing(tmp_path):
    path = write_lines(
        tmp_path / "k.csv",
        ["1,alpha,get", "2,beta,set", "3,alpha,gets", "4,beta,delete,extra"],
    )
    items, writes = collect(KvTraceStream(path))
    assert items[0] == items[2]  # same key, same id
    assert items[1] == items[3]
    assert items[0] != items[1]
    assert (items >= 0).all() and (items < 2**63).all()
    assert writes.tolist() == [False, True, False, True]


def test_kv_rejects_unknown_op(tmp_path):
    path = write_lines(tmp_path / "k.csv", ["1,key,frobnicate"])
    with pytest.raises(TraceFormatError, match="unknown op"):
        collect(KvTraceStream(path))


def test_kv_rejects_empty_key(tmp_path):
    path = write_lines(tmp_path / "k.csv", ["1,,get"])
    with pytest.raises(TraceFormatError, match="empty key"):
        collect(KvTraceStream(path))


# -- streaming densification -------------------------------------------------


def test_streaming_densifier_matches_batch(tmp_path):
    rng = np.random.default_rng(5)
    addresses = rng.integers(0, 2**40, size=500)
    batch, batch_universe = densify_addresses(addresses, block_size=8)
    dens = StreamingDensifier(8)
    pieces = [
        dens.apply(chunk) for chunk in np.array_split(addresses, 13)
    ]
    assert np.concatenate(pieces).tolist() == batch.tolist()
    assert dens.universe == batch_universe


# -- conversion --------------------------------------------------------------


def test_convert_text_fingerprint_parity(tmp_path):
    trace = markov_spatial(
        length=4000, universe=512, block_size=8, stay=0.8, seed=6
    )
    from repro.core.readwrite import RWTrace

    rw = RWTrace(trace=trace, is_write=np.zeros(len(trace), dtype=bool))
    src = write_text_trace(rw, tmp_path / "t.txt")
    out = convert_to_rtc(src, tmp_path / "t.rtc")
    loaded = open_rtc(out)
    in_memory = read_text_trace(src).trace
    assert loaded.fingerprint() == in_memory.fingerprint()
    assert loaded.metadata == in_memory.metadata


def test_convert_msr_densifies_by_default(tmp_path):
    src = write_lines(
        tmp_path / "m.csv",
        ["1,h,0,Read,1000000000,8192", "2,h,0,Read,0,4096"],
    )
    out = convert_to_rtc(src, tmp_path / "m.rtc", fmt="msr", block_size=4)
    loaded = open_rtc(out)
    # Sparse page ids were renamed onto a dense universe.
    assert int(np.asarray(loaded.items).max()) < loaded.mapping.universe
    # 3 pages for the first record's 8 KB span, 1 for the second.
    assert len(loaded) == 4


def test_convert_with_window(tmp_path):
    src = write_lines(tmp_path / "t.txt", [str(i) for i in range(30)])
    out = convert_to_rtc(
        src, tmp_path / "t.rtc", block_size=1, offset=10, limit=5
    )
    assert np.asarray(open_rtc(out).items).tolist() == list(range(10, 15))


def test_convert_sampled_matches_post_hoc_sampling(tmp_path):
    trace = markov_spatial(
        length=3000, universe=512, block_size=8, stay=0.8, seed=8
    )
    from repro.core.readwrite import RWTrace

    rw = RWTrace(trace=trace, is_write=np.zeros(len(trace), dtype=bool))
    src = write_text_trace(rw, tmp_path / "t.txt")
    out = convert_to_rtc(
        src, tmp_path / "t.rtc", sample_rate=0.25, sample_seed=4
    )
    sampled = sample_trace(read_text_trace(src).trace, 0.25, seed=4)
    assert np.asarray(open_rtc(out).items).tolist() == sampled.items.tolist()


def test_convert_unknown_format(tmp_path):
    src = write_lines(tmp_path / "t.txt", ["1"])
    with pytest.raises(ConfigurationError, match="unknown trace format"):
        convert_to_rtc(src, tmp_path / "t.rtc", fmt="parquet")


def test_convert_failure_leaves_no_partial_file(tmp_path):
    src = write_lines(tmp_path / "t.txt", ["1", "2", "bad line here"])
    with pytest.raises(TraceFormatError):
        convert_to_rtc(src, tmp_path / "t.rtc")
    assert not (tmp_path / "t.rtc").exists()
    assert not list(tmp_path.glob("*.tmp-*"))

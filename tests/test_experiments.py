"""Experiment driver tests: every paper artifact regenerates correctly."""

import math

import pytest

from repro.experiments import (
    ablation,
    adversarial,
    figure2,
    figure3,
    figure5,
    figure6,
    locality_exp,
    schematics,
    table1,
    table2,
)


class TestTable1:
    def test_rows_close_to_paper(self):
        rows = table1.run(h=10_000.0, B=64.0)
        assert len(rows) == 9
        for row in rows:
            assert row["rel_dev"] < 0.25  # paper's cells carry "~"

    def test_render_mentions_parameters(self):
        text = table1.render(h=1000.0, B=16.0)
        assert "B=16" in text


class TestTable2:
    def test_asymptotic_rows(self):
        rows = table2.run_asymptotic(p=2.0, B=64.0)
        assert [r["label"] for r in rows] == [
            "no_spatial",
            "high_spatial",
            "max_spatial",
        ]

    def test_numeric_bounds_ordering(self):
        for row in table2.run_numeric(p=2.0, B=16.0, i=1024.0):
            # IBLP's bound cannot beat the baseline lower bound by more
            # than it should, and all are valid rates.
            assert 0 < row["lower_bound"] <= 1
            assert row["iblp_ub"] <= min(
                row["item_layer_ub"], row["block_layer_ub"]
            ) + 1e-12
            assert row["gap_vs_baseline"] >= 0.95

    def test_worst_gap_at_high_spatial(self):
        """§7.3: the largest IBLP-vs-baseline gap is the middle row."""
        rows = table2.run_numeric(p=2.0, B=64.0, i=2.0**14)
        gaps = {r["label"]: r["gap_vs_baseline"] for r in rows}
        assert gaps["high_spatial"] >= gaps["no_spatial"] - 1e-9
        assert gaps["high_spatial"] >= gaps["max_spatial"] - 1e-9


class TestFigure2:
    def test_all_instances_equal(self):
        rows = figure2.run(trials=4, seed=1)
        assert all(r["equal"] for r in rows)

    def test_bracket_contains_exact(self):
        for r in figure2.run(trials=3, seed=2):
            assert r["gc_lower"] <= r["gc_opt"] <= r["gc_heuristic_upper"]

    def test_render_reports_success(self):
        assert "ALL EQUAL" in figure2.render(trials=2, seed=3)


class TestFigure3:
    def test_curve_relationships(self):
        rows = figure3.run(points=40)
        for row in rows:
            # GC lower bound dominates Sleator-Tarjan everywhere.
            assert row["gc_lower"] >= row["sleator_tarjan"] - 1e-9
            # The general bound is the min over specializations.
            assert row["gc_lower"] <= row["item_lower"] + 1e-9
            if not math.isinf(row["block_lower"]):
                assert row["gc_lower"] <= row["block_lower"] * 1.01
            # IBLP's upper bound sits above the general lower bound.
            assert row["iblp_upper"] >= row["gc_lower"] * 0.999

    def test_item_crossover_near_3(self):
        cx = figure3.crossovers()
        assert cx["item_crossover_k_over_h"] == pytest.approx(3.0, rel=0.15)

    def test_block_crossover_order_b(self):
        cx = figure3.crossovers()
        ratio = cx["block_crossover_k_over_h"]
        # Paper quotes ~4B; the exact formulas cross at ~2B.  Same
        # order; assert we are within [B, 8B].
        assert 64 <= ratio <= 8 * 64

    def test_render_smoke(self):
        text = figure3.render(points=30)
        assert "Figure 3" in text and "iblp_upper" in text


class TestFigure5:
    def test_closed_forms_upper_bound_lp(self):
        rows = figure5.run(B=8.0)
        assert all(r["closed_is_upper"] for r in rows)

    def test_thm5_thm6_exact(self):
        for r in figure5.run(B=8.0):
            assert r["thm5_lp"] == pytest.approx(r["thm5_closed"], rel=1e-6)
            assert r["thm6_lp"] == pytest.approx(r["thm6_closed"], rel=0.02)


class TestFigure6:
    def test_fixed_split_never_beats_envelope(self):
        rows = figure6.run(points=30)
        for row in rows:
            for key, val in row.items():
                if key.startswith("fixed_i_for_h"):
                    assert val >= row["optimal_split"] * 0.999

    def test_fixed_split_is_tight_at_its_design_point(self):
        k, B = 1_280_000, 64
        h0 = k / 100
        rows = figure6.run(k=k, B=B, fixed_for_h=[h0], points=60)
        label = f"fixed_i_for_h={h0:g}"
        # Find the sampled h closest to the design point.
        best = min(rows, key=lambda r: abs(r["h"] - h0))
        assert best[label] == pytest.approx(best["optimal_split"], rel=0.05)

    def test_degradation_is_asymmetric(self):
        """Fixed splits degrade for larger h, mildly for smaller (§5.3)."""
        k, B = 1_280_000, 64
        h0 = k / 100
        rows = figure6.run(k=k, B=B, fixed_for_h=[h0], points=80)
        label = f"fixed_i_for_h={h0:g}"
        small_h = [r for r in rows if r["h"] < h0 / 4]
        large_h = [r for r in rows if r["h"] > h0 * 4 and r["h"] < k / 2]
        small_excess = max(
            r[label] / r["optimal_split"] for r in small_h
        )
        large_excess = max(
            r[label] / r["optimal_split"] for r in large_h
        )
        assert large_excess > small_excess


class TestEmpiricalExperiments:
    def test_adversarial_rows_small(self):
        rows = adversarial.run(k=64, h=24, B=4, cycles=2)
        by = {(r["adversary"], r["policy"]): r for r in rows}
        # Item LRU pinned by Thm 2's adversary.
        r = by[("thm2_item", "item-lru")]
        assert r["ratio"] == pytest.approx(r["target_bound"], rel=0.15)
        # IBLP evades Thm 2.
        assert by[("thm2_item", "iblp-even")]["ratio"] < r["ratio"] / 2

    def test_locality_rows_small(self):
        rows = locality_exp.run(k=24, B=4, p=2.0, phases=2)
        for row in rows:
            if row["source"] == "adversarial":
                assert row["fault_rate"] >= row["thm8_lower"] * 0.8
            if row["policy"] == "iblp" and row["source"] == "generated":
                assert row["fault_rate"] <= row["thm11_upper_iblp"] * 1.2

    def test_ablation_layer_order(self):
        rows = ablation.layer_order(k=128, B=8, length=20_000)
        by = {r["policy"]: r for r in rows}
        # §5.1: letting temporal hits reorder the block-layer LRU lets
        # pinned hot blocks destroy the stream's spatial hits entirely.
        assert by["iblp"]["misses"] < 0.25 * by["iblp-blockfirst"]["misses"]
        assert by["iblp-blockfirst"]["spatial_hits"] < by["iblp"]["spatial_hits"]

    def test_ablation_athreshold_extremes_win(self):
        rows = ablation.athreshold_sweep(k=64, h=24, B=4, cycles=2)
        ratios = {r["a"]: r["ratio"] for r in rows}
        best = min(ratios.values())
        assert min(ratios[1], ratios[4]) == pytest.approx(best, rel=0.05)

    def test_ablation_eviction_granularity(self):
        rows = ablation.eviction_granularity(k=128, B=8, length=20_000)
        by = {r["policy"]: r for r in rows}
        # Pure-recency item eviction is no worse than block eviction...
        assert by["athreshold-lru"]["misses"] <= by["block-lru"]["misses"]
        # ...and preferring accessed items (IBLP's item layer) is far
        # better, §4.4's eviction conclusion.
        assert by["iblp"]["misses"] < 0.7 * by["block-lru"]["misses"]

    def test_ablation_gcm_variants(self):
        rows = ablation.gcm_variants(k=128, B=8, length=20_000)
        by = {r["policy"]: r for r in rows}
        assert by["gcm"]["misses"] <= by["marking-lru"]["misses"]


class TestSchematics:
    def test_figure1_sequence(self):
        log = schematics.figure1_demo()
        assert [e["kind"] for e in log] == [
            "miss",
            "spatial",
            "spatial",
            "temporal",
        ]

    def test_figure4_flow(self):
        log = schematics.figure4_demo()
        kinds = [e["kind"] for e in log]
        assert kinds == ["miss", "spatial", "temporal", "miss", "spatial"]

    def test_render(self):
        text = schematics.render()
        assert "Figure 1" in text and "Figure 4" in text

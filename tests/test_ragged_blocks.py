"""Policies over irregular (ragged) block partitions.

Definition 1 allows blocks of *up to* B items; the §3 reduction
produces exactly such ragged partitions.  These tests run the whole
policy zoo over an ExplicitBlockMapping with block sizes 1..B and
check granularity behaviour per block size.
"""

import numpy as np
import pytest

from repro.core.conformance import assert_conformant
from repro.core.engine import simulate
from repro.core.fast import FAST_POLICY_NAMES
from repro.core.mapping import ExplicitBlockMapping, FixedBlockMapping
from repro.core.trace import Trace
from repro.policies import make_policy, policy_names

ONLINE = sorted(n for n in policy_names() if not n.startswith("belady"))


@pytest.fixture
def ragged():
    # Blocks: {0}, {1,2}, {3,4,5}, {6,7,8,9}, {10}, {11,12,13}
    return ExplicitBlockMapping.from_groups(
        [[0], [1, 2], [3, 4, 5], [6, 7, 8, 9], [10], [11, 12, 13]],
        max_block_size=4,
    )


@pytest.mark.parametrize("name", ONLINE)
def test_all_policies_run_on_ragged_blocks(name, ragged):
    rng = np.random.default_rng(0)
    trace = Trace(rng.integers(0, 14, 600, dtype=np.int64), ragged)
    res = simulate(
        make_policy(name, 6, ragged), trace, cross_check_every=50
    )
    assert res.accesses == 600


def test_block_lru_loads_ragged_block_exactly(ragged):
    p = make_policy("block-lru", 8, ragged)
    out = p.access(4)
    assert out.loaded == frozenset([3, 4, 5])
    out = p.access(0)
    assert out.loaded == frozenset([0])


def test_iblp_spatial_hits_per_block_size(ragged):
    trace = Trace(np.arange(14), ragged)
    res = simulate(make_policy("iblp", 10, ragged), trace)
    # One miss per block (6 blocks), spatial hits for the rest.
    assert res.misses == 6
    assert res.spatial_hits == 14 - 6


def test_singleton_blocks_behave_traditionally(ragged):
    # Items 0 and 10 are alone in their blocks: no spatial effects.
    trace = Trace(np.array([0, 10, 0, 10]), ragged)
    res = simulate(make_policy("gcm", 4, ragged), trace)
    assert res.spatial_hits == 0
    assert res.misses == 2


def test_offline_policies_on_ragged(ragged):
    trace = Trace(np.array([3, 4, 5, 3, 6, 7, 3]), ragged)
    for name in ("belady-item", "belady-block", "belady-gc"):
        res = simulate(make_policy(name, 5, ragged), trace, cross_check_every=1)
        assert res.accesses == 7


def test_exact_solver_on_ragged(ragged):
    from repro.offline.exact import solve_gc_exact

    trace = Trace(np.array([1, 2, 3, 4, 5, 1, 2]), ragged)
    # Load {1,2} (1 miss), {3,4,5} (1 miss); cache 5 holds both.
    assert solve_gc_exact(trace, 5) == 2


# -- fast-kernel conformance on ragged geometry ------------------------------
@pytest.mark.parametrize("name", FAST_POLICY_NAMES)
@pytest.mark.parametrize("k", [1, 2, 5, 10])
def test_fast_kernels_conform_on_ragged_partition(name, k, ragged):
    """The kernels replay the §3-style ragged partition bit-identically:
    singleton blocks, short blocks, and full blocks in one mapping."""
    rng = np.random.default_rng(1)
    trace = Trace(rng.integers(0, 14, 600, dtype=np.int64), ragged)
    assert_conformant(name, k, trace, cross_check_every=50)


@pytest.mark.parametrize("name", FAST_POLICY_NAMES)
def test_fast_kernels_conform_on_ragged_final_fixed_block(name):
    """FixedBlockMapping with universe % B != 0 (short trailing block)."""
    mapping = FixedBlockMapping(universe=22, block_size=8)
    rng = np.random.default_rng(2)
    trace = Trace(rng.integers(0, 22, 600, dtype=np.int64), mapping)
    assert_conformant(name, 6, trace)

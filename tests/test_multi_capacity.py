"""Batched multi-capacity replay and the sweep collapse that uses it.

Two layers of guarantees:

* **Kernel** — ``multi_capacity_replay`` must be bit-identical to the
  validating referee at every capacity, on results *and* per-access
  outcome streams, across randomized geometries (the conformance suite
  and goldens pin this too; here we add randomized trials plus the
  support-predicate edge cases).
* **Sweep collapse** — ``sweep(batch="auto")`` must produce rows
  byte-for-byte equal to per-cell replay, collapse only when it is
  provably safe (pure capacity axis, stack policy, fast path, no
  timing), and fall back silently everywhere else.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweep import default_workers, grid, simulate_cell, sweep
from repro.core.conformance import (
    assert_multi_capacity_conformant,
    check_multi_capacity,
    referee_outcomes,
)
from repro.core.fast import (
    MULTI_CAPACITY_POLICIES,
    multi_capacity_replay,
    multi_capacity_supported,
    stack_distances,
)
from repro.core.mapping import ExplicitBlockMapping, FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError, SweepCellError
from repro.policies import make_policy

RESULT_FIELDS = (
    "accesses",
    "misses",
    "temporal_hits",
    "spatial_hits",
    "loaded_items",
    "evicted_items",
    "policy",
    "capacity",
    "metadata",
)


def _trace(items, universe, B, metadata=None) -> Trace:
    return Trace(
        np.asarray(items, dtype=np.int64),
        FixedBlockMapping(universe=universe, block_size=B),
        metadata or {},
    )


# -- stack distances ---------------------------------------------------------


def test_stack_distances_reference():
    # d a d d b d e: classic worked example.
    ids = np.array([3, 0, 3, 3, 1, 3, 4], dtype=np.int64)
    assert stack_distances(ids).tolist() == [-1, -1, 1, 0, -1, 1, -1]


def test_stack_distances_randomized_matches_quadratic_reference():
    rng = np.random.default_rng(7)
    for _ in range(40):
        n = int(rng.integers(0, 120))
        ids = rng.integers(0, 12, n).astype(np.int64)
        want = []
        for t in range(n):
            prior = [s for s in range(t) if ids[s] == ids[t]]
            if not prior:
                want.append(-1)
            else:
                want.append(len(set(ids[prior[-1] + 1 : t].tolist())))
        assert stack_distances(ids).tolist() == want


# -- kernel vs referee -------------------------------------------------------


@pytest.mark.parametrize("policy_name", MULTI_CAPACITY_POLICIES)
def test_randomized_bit_identity_with_outcome_streams(policy_name):
    rng = np.random.default_rng(42)
    for trial in range(25):
        B = int(rng.integers(1, 6))
        blocks = int(rng.integers(1, 12))
        universe = blocks * B
        n = int(rng.integers(0, 160))
        trace = _trace(
            rng.integers(0, universe, n), universe, B, {"trial": trial}
        )
        caps = sorted(
            {int(k) for k in rng.integers(B, 4 * universe + B, 4)}
        )
        if not multi_capacity_supported(policy_name, trace, caps):
            continue
        record: dict = {}
        results = multi_capacity_replay(policy_name, trace, caps, record=record)
        for k in caps:
            ref_result, ref_codes = referee_outcomes(
                make_policy(policy_name, k, trace.mapping), trace
            )
            for field in RESULT_FIELDS:
                assert getattr(results[k], field) == getattr(
                    ref_result, field
                ), f"trial {trial} {policy_name} k={k} field {field}"
            assert record[k] == ref_codes, f"trial {trial} {policy_name} k={k}"


def test_conformance_helpers_cover_the_batched_path(small_mapping):
    rng = np.random.default_rng(3)
    trace = Trace(rng.integers(0, 64, 300, dtype=np.int64), small_mapping)
    for policy_name in MULTI_CAPACITY_POLICIES:
        reports = assert_multi_capacity_conformant(
            policy_name, trace, [4, 8, 16, 64]
        )
        assert [r.capacity for r in reports] == [4, 8, 16, 64]
        assert all(r.ok for r in reports)


def test_check_multi_capacity_rejects_unsupported_combinations():
    trace = _trace(range(16), 16, 4)
    with pytest.raises(ConfigurationError, match="no batched kernel"):
        check_multi_capacity("block-lru", trace, [2])  # k < B
    with pytest.raises(ConfigurationError, match="no batched kernel"):
        check_multi_capacity("iblp", trace, [4, 8])  # not a stack policy


# -- the support predicate ---------------------------------------------------


def test_supported_rejects_non_uniform_blocks_for_block_lru():
    mapping = ExplicitBlockMapping.from_groups(
        [[0], [1, 2], [3, 4, 5]], max_block_size=4
    )
    trace = Trace(np.array([0, 3, 5, 1], dtype=np.int64), mapping)
    assert not multi_capacity_supported("block-lru", trace, [4, 8])
    assert multi_capacity_supported("item-lru", trace, [4, 8])


def test_supported_uniform_explicit_mapping_batches_block_lru():
    mapping = ExplicitBlockMapping.from_groups(
        [[0, 1], [2, 3], [4, 5]], max_block_size=2
    )
    trace = Trace(np.array([0, 2, 4, 0, 5], dtype=np.int64), mapping)
    assert multi_capacity_supported("block-lru", trace, [2, 4])
    assert_multi_capacity_conformant("block-lru", trace, [2, 4])


def test_supported_rejects_bad_capacities():
    trace = _trace(range(8), 8, 4)
    assert not multi_capacity_supported("item-lru", trace, [])
    assert not multi_capacity_supported("item-lru", trace, [0, 4])
    assert not multi_capacity_supported("item-lru", trace, [True, 4])
    assert not multi_capacity_supported("item-lru", trace, [4.0, 8])
    assert not multi_capacity_supported("gcm", trace, [4])


def test_replay_raises_where_supported_says_no():
    trace = _trace(range(8), 8, 4)
    with pytest.raises(ConfigurationError):
        multi_capacity_replay("block-lru", trace, [2])


# -- sweep collapse ----------------------------------------------------------


def _rows_without_trace(rows, trace):
    out = []
    for row in rows:
        row = dict(row)
        assert row.pop("trace") is trace
        out.append(row)
    return out


@pytest.fixture
def sweep_trace() -> Trace:
    rng = np.random.default_rng(9)
    return Trace(
        rng.integers(0, 512, 4000, dtype=np.int64),
        FixedBlockMapping(universe=512, block_size=8),
        {"generator": "uniform", "seed": 9},
    )


def test_collapsed_sweep_rows_equal_per_cell_rows(sweep_trace):
    cells = grid(
        policy=["item-lru", "block-lru", "iblp"],
        capacity=[8, 16, 32, 64],
        trace=[sweep_trace],
    )
    per_cell = sweep(simulate_cell, cells, batch="never")
    collapsed = sweep(simulate_cell, cells, batch="auto")
    assert _rows_without_trace(collapsed, sweep_trace) == _rows_without_trace(
        per_cell, sweep_trace
    )


def test_parallel_collapsed_sweep_matches_serial_referee(sweep_trace):
    cells = grid(
        policy=["item-lru", "block-lru"],
        capacity=[8, 32, 128],
        trace=[sweep_trace],
        fast=[False],
    )
    referee = sweep(simulate_cell, cells, batch="never")
    fast_cells = grid(
        policy=["item-lru", "block-lru"],
        capacity=[8, 32, 128],
        trace=[sweep_trace],
    )
    parallel = sweep(simulate_cell, fast_cells, parallel=True, max_workers=2)
    stripped_ref = [
        {k: v for k, v in row.items() if k not in ("trace", "fast")}
        for row in referee
    ]
    stripped_par = [
        {k: v for k, v in row.items() if k not in ("trace", "fast")}
        for row in parallel
    ]
    assert stripped_par == stripped_ref


def test_collapse_requires_pure_capacity_axis(sweep_trace, monkeypatch):
    from repro.core import fast

    calls = []
    real = fast.multi_capacity_replay

    def spy(policy_name, trace, capacities, record=None):
        calls.append((policy_name, tuple(capacities)))
        return real(policy_name, trace, capacities, record)

    monkeypatch.setattr(fast, "multi_capacity_replay", spy)

    cells = grid(
        policy=["item-lru"], capacity=[8, 16], trace=[sweep_trace]
    )
    sweep(simulate_cell, cells)
    assert calls == [("item-lru", (8, 16))]

    calls.clear()
    # Any extra key (policy kwargs) must force per-cell replay.
    kwarg_cells = [dict(c, a=1) for c in grid(
        policy=["athreshold-lru"], capacity=[8, 16], trace=[sweep_trace]
    )]
    sweep(simulate_cell, kwarg_cells)
    assert calls == []

    # fast=False, timing=True, batch="never", single-capacity groups,
    # and foreign worker fns must all fall back too.
    sweep(
        simulate_cell,
        grid(policy=["item-lru"], capacity=[8, 16], trace=[sweep_trace],
             fast=[False]),
    )
    sweep(
        simulate_cell,
        grid(policy=["item-lru"], capacity=[8, 16], trace=[sweep_trace]),
        timing=True,
    )
    sweep(
        simulate_cell,
        grid(policy=["item-lru"], capacity=[8, 16], trace=[sweep_trace]),
        batch="never",
    )
    sweep(
        simulate_cell,
        grid(policy=["item-lru"], capacity=[8], trace=[sweep_trace]),
    )
    assert calls == []


def test_mixed_policy_grid_collapses_only_stack_policies(sweep_trace, monkeypatch):
    from repro.core import fast

    calls = []
    real = fast.multi_capacity_replay

    def spy(policy_name, trace, capacities, record=None):
        calls.append(policy_name)
        return real(policy_name, trace, capacities, record)

    monkeypatch.setattr(fast, "multi_capacity_replay", spy)
    cells = grid(
        policy=["item-lru", "block-lru", "gcm", "iblp"],
        capacity=[8, 16, 32],
        trace=[sweep_trace],
    )
    rows = sweep(simulate_cell, cells, batch="auto")
    assert sorted(calls) == ["block-lru", "item-lru"]
    per_cell = sweep(simulate_cell, cells, batch="never")
    assert _rows_without_trace(rows, sweep_trace) == _rows_without_trace(
        per_cell, sweep_trace
    )


def test_sweep_rejects_bad_knobs(sweep_trace):
    cells = grid(policy=["item-lru"], capacity=[8], trace=[sweep_trace])
    with pytest.raises(ConfigurationError, match="batch"):
        sweep(simulate_cell, cells, batch="sometimes")
    with pytest.raises(ConfigurationError, match="chunksize"):
        sweep(simulate_cell, cells, chunksize=0)


# -- chunked dispatch and worker plumbing ------------------------------------


def _flaky(a):
    if a == 5:
        raise ZeroDivisionError("boom")
    return {"value": a * 2}


def test_chunked_parallel_rows_match_serial():
    cells = [{"a": i} for i in range(11)]
    serial = sweep(_flaky, cells[:5])
    chunked = sweep(_flaky, cells[:5], parallel=True, max_workers=2, chunksize=2)
    assert chunked == serial


def test_chunked_error_names_the_failing_cell():
    cells = [{"a": i} for i in range(11)]
    with pytest.raises(SweepCellError) as excinfo:
        sweep(_flaky, cells, parallel=True, max_workers=2, chunksize=3)
    assert excinfo.value.cell == {"a": 5}
    assert "ZeroDivisionError" in str(excinfo.value)


def test_default_workers_env_override(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    import os

    assert default_workers() == (os.cpu_count() or 1)
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert default_workers() == 3
    monkeypatch.setenv("REPRO_JOBS", "0")
    with pytest.raises(ConfigurationError):
        default_workers()
    monkeypatch.setenv("REPRO_JOBS", "two")
    with pytest.raises(ConfigurationError):
        default_workers()


def test_parallel_sweep_with_shm_disabled_matches(sweep_trace, monkeypatch):
    monkeypatch.setenv("REPRO_NO_SHM", "1")
    cells = grid(
        policy=["iblp"], capacity=[8, 32], trace=[sweep_trace]
    )
    fallback = sweep(simulate_cell, cells, parallel=True, max_workers=2)
    monkeypatch.delenv("REPRO_NO_SHM")
    serial = sweep(simulate_cell, cells)
    # The pickled-trace fallback rows match modulo the trace column
    # (the fallback round-trips the object, arenas preserve identity).
    strip = lambda rows: [
        {k: v for k, v in r.items() if k != "trace"} for r in rows
    ]
    assert strip(fallback) == strip(serial)

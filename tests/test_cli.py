"""CLI tests: parsing and end-to-end dispatch."""

import pytest

from repro.cli import build_parser, main


def test_help_lists_subcommands(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--help"])
    out = capsys.readouterr().out
    for cmd in (
        "table",
        "figure",
        "simulate",
        "adversarial",
        "profile",
        "campaign",
    ):
        assert cmd in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    import repro

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert repro.__version__ in out
    assert "gc-caching" in out


def test_table1(capsys):
    assert main(["table", "1", "--h", "1000", "--B", "16"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "gc_upper" in out


def test_table2(capsys):
    assert main(["table", "2", "--B", "16", "--p", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out


def test_figure2(capsys):
    assert main(["figure", "2", "--trials", "2"]) == 0
    assert "ALL EQUAL" in capsys.readouterr().out


def test_figure3(capsys):
    assert main(["figure", "3", "--points", "30"]) == 0
    assert "Figure 3" in capsys.readouterr().out


def test_figure5(capsys):
    assert main(["figure", "5", "--B", "8"]) == 0
    assert "LP validation" in capsys.readouterr().out


def test_figure6(capsys):
    assert main(["figure", "6", "--points", "20"]) == 0
    assert "Figure 6" in capsys.readouterr().out


def test_simulate(capsys):
    code = main(
        [
            "simulate",
            "--policy",
            "iblp",
            "--workload",
            "zipf",
            "--capacity",
            "64",
            "--length",
            "2000",
            "--universe",
            "512",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "misses" in out


def test_simulate_telemetry_and_report(tmp_path, capsys):
    """End-to-end: --telemetry writes a parseable JSONL whose window
    misses sum to the reported total, and `report` renders it."""
    import json

    out_file = tmp_path / "tele.jsonl"
    code = main(
        [
            "simulate",
            "--policy",
            "iblp",
            "--workload",
            "markov",
            "--capacity",
            "64",
            "--length",
            "2500",
            "--universe",
            "512",
            "--telemetry",
            str(out_file),
            "--window",
            "1000",
            "--sample-rate",
            "0.1",
        ]
    )
    assert code == 0
    sim_out = capsys.readouterr().out
    assert "telemetry:" in sim_out

    records = [json.loads(line) for line in out_file.read_text().splitlines()]
    windows = [r for r in records if r["type"] == "window"]
    (summary,) = [r for r in records if r["type"] == "summary"]
    assert [w["accesses"] for w in windows] == [1000, 1000, 500]
    assert sum(w["misses"] for w in windows) == summary["misses"]
    assert summary["result"]["misses"] == summary["misses"]

    assert main(["report", str(out_file), "--metric", "miss_ratio"]) == 0
    report_out = capsys.readouterr().out
    assert "windowed telemetry" in report_out
    assert "miss_ratio vs window" in report_out
    assert main(["report", str(out_file), "--no-plot"]) == 0
    assert "vs window" not in capsys.readouterr().out


def test_simulate_telemetry_csv(tmp_path, capsys):
    out_file = tmp_path / "tele.csv"
    code = main(
        [
            "simulate",
            "--policy",
            "item-lru",
            "--workload",
            "zipf",
            "--capacity",
            "64",
            "--length",
            "1200",
            "--universe",
            "512",
            "--telemetry",
            str(out_file),
            "--window",
            "400",
        ]
    )
    assert code == 0
    lines = out_file.read_text().splitlines()
    assert lines[0].startswith("type,")
    assert sum(1 for ln in lines if ln.startswith("window,")) == 3


def test_simulate_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        main(["simulate", "--policy", "nope", "--workload", "zipf", "--capacity", "8"])


def test_profile(capsys):
    assert (
        main(
            [
                "profile",
                "--workload",
                "markov",
                "--length",
                "3000",
                "--universe",
                "256",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "polynomial fit" in out


def test_adversarial_small(capsys):
    assert main(["adversarial", "--k", "64", "--h", "24", "--B", "4", "--cycles", "2"]) == 0
    out = capsys.readouterr().out
    assert "thm2_item" in out


def test_schematics(capsys):
    assert main(["schematics"]) == 0
    assert "Figure 4" in capsys.readouterr().out


def test_mrc(capsys):
    assert (
        main(
            [
                "mrc",
                "--workload",
                "zipf",
                "--length",
                "3000",
                "--universe",
                "512",
                "--capacities",
                "16,64",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Mattson MRC" in out
    assert "item_lru_miss_ratio" in out


def test_simulate_trace_file(tmp_path, capsys):
    trace = tmp_path / "t.trace"
    trace.write_text("\n".join(str(i % 64) for i in range(400)))
    code = main(
        [
            "simulate",
            "--policy",
            "iblp",
            "--trace-file",
            str(trace),
            "--capacity",
            "16",
            "--block-size",
            "8",
        ]
    )
    assert code == 0
    assert "misses" in capsys.readouterr().out


def test_simulate_requires_some_source():
    with pytest.raises(SystemExit):
        main(["simulate", "--policy", "iblp", "--capacity", "16"])

"""CLI tests: parsing and end-to-end dispatch."""

import pytest

from repro.cli import build_parser, main


def test_help_lists_subcommands(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--help"])
    out = capsys.readouterr().out
    for cmd in ("table", "figure", "simulate", "adversarial", "profile"):
        assert cmd in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table1(capsys):
    assert main(["table", "1", "--h", "1000", "--B", "16"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "gc_upper" in out


def test_table2(capsys):
    assert main(["table", "2", "--B", "16", "--p", "2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out


def test_figure2(capsys):
    assert main(["figure", "2", "--trials", "2"]) == 0
    assert "ALL EQUAL" in capsys.readouterr().out


def test_figure3(capsys):
    assert main(["figure", "3", "--points", "30"]) == 0
    assert "Figure 3" in capsys.readouterr().out


def test_figure5(capsys):
    assert main(["figure", "5", "--B", "8"]) == 0
    assert "LP validation" in capsys.readouterr().out


def test_figure6(capsys):
    assert main(["figure", "6", "--points", "20"]) == 0
    assert "Figure 6" in capsys.readouterr().out


def test_simulate(capsys):
    code = main(
        [
            "simulate",
            "--policy",
            "iblp",
            "--workload",
            "zipf",
            "--capacity",
            "64",
            "--length",
            "2000",
            "--universe",
            "512",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "misses" in out


def test_simulate_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        main(["simulate", "--policy", "nope", "--workload", "zipf", "--capacity", "8"])


def test_profile(capsys):
    assert (
        main(
            [
                "profile",
                "--workload",
                "markov",
                "--length",
                "3000",
                "--universe",
                "256",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "polynomial fit" in out


def test_adversarial_small(capsys):
    assert main(["adversarial", "--k", "64", "--h", "24", "--B", "4", "--cycles", "2"]) == 0
    out = capsys.readouterr().out
    assert "thm2_item" in out


def test_schematics(capsys):
    assert main(["schematics"]) == 0
    assert "Figure 4" in capsys.readouterr().out


def test_mrc(capsys):
    assert (
        main(
            [
                "mrc",
                "--workload",
                "zipf",
                "--length",
                "3000",
                "--universe",
                "512",
                "--capacities",
                "16,64",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Mattson MRC" in out
    assert "item_lru_miss_ratio" in out


def test_simulate_trace_file(tmp_path, capsys):
    trace = tmp_path / "t.trace"
    trace.write_text("\n".join(str(i % 64) for i in range(400)))
    code = main(
        [
            "simulate",
            "--policy",
            "iblp",
            "--trace-file",
            str(trace),
            "--capacity",
            "16",
            "--block-size",
            "8",
        ]
    )
    assert code == 0
    assert "misses" in capsys.readouterr().out


def test_simulate_requires_some_source():
    with pytest.raises(SystemExit):
        main(["simulate", "--policy", "iblp", "--capacity", "16"])

"""Serving-layer invariants, property-tested.

Four laws pin the discrete-event core:

* **Monotone time** — popped event timestamps never decrease, ties
  resolve in insertion order, and scheduling into the past raises.
* **Conservation** — after the loop drains, every arrival is accounted
  for: ``arrivals = completions + dropped`` (nothing in flight), and
  only non-dropped requests touched the cache.
* **Little's law** — exact, not approximate: a run that starts and
  ends empty has ∫N(t)dt equal to the sum of sojourn times, hence
  ``L = λW`` to float precision; with timeouts the identity holds with
  queue-dropped wait included.
* **M/M/1** — the degenerate no-cache config (exponential service with
  ``t_miss=0``, one server, Poisson arrivals) is a textbook M/M/1
  queue, so the measured mean sojourn must match ``1/(μ-λ)`` within
  CI bounds.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.serving import (
    ArrivalSpec,
    EventLoop,
    ServiceModel,
    ServingConfig,
    serve_policy,
)
from repro.workloads import uniform_random


def make_trace(length=400, universe=64, seed=0):
    return uniform_random(length, universe, 4, seed)


# ---------------------------------------------------------------------------
# Event heap
# ---------------------------------------------------------------------------
class TestEventLoop:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=60)
    )
    @settings(max_examples=50, deadline=None)
    def test_pops_in_monotone_time_order(self, times):
        loop = EventLoop()
        for i, t in enumerate(times):
            loop.schedule(t, "e", i)
        popped = []
        while True:
            event = loop.pop()
            if event is None:
                break
            popped.append(event)
        assert len(popped) == len(times)
        assert [t for t, _, _ in popped] == sorted(times)
        assert loop.processed == len(times)

    @given(st.integers(min_value=2, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_ties_break_in_insertion_order(self, n):
        loop = EventLoop()
        for i in range(n):
            loop.schedule(5.0, "e", i)
        payloads = []
        while True:
            event = loop.pop()
            if event is None:
                break
            payloads.append(event[2])
        assert payloads == list(range(n))

    def test_scheduling_into_the_past_raises(self):
        loop = EventLoop()
        loop.schedule(10.0, "a")
        assert loop.pop()[0] == 10.0
        with pytest.raises(ConfigurationError):
            loop.schedule(9.0, "b")


# ---------------------------------------------------------------------------
# Config-space strategy for the whole-loop laws
# ---------------------------------------------------------------------------
def _configs():
    arrival = st.sampled_from(
        [
            ArrivalSpec(process="poisson", rate=0.05, seed=1),
            ArrivalSpec(process="poisson", rate=0.005, seed=2),
            ArrivalSpec(process="mmpp", rate=0.02, seed=3),
            ArrivalSpec(process="constant", rate=0.03),
            ArrivalSpec(process="closed", clients=4, think=10.0, seed=4),
        ]
    )
    return st.builds(
        ServingConfig,
        arrival=arrival,
        service=st.sampled_from(
            [
                ServiceModel(t_hit=1.0, t_miss=50.0),
                ServiceModel(t_hit=2.0, t_miss=20.0, t_item=1.0),
                ServiceModel(t_hit=1.0, t_miss=30.0, dist="exponential", seed=5),
            ]
        ),
        concurrency=st.integers(min_value=1, max_value=4),
        queue=st.sampled_from(["fifo", "sjf"]),
        queue_limit=st.sampled_from([None, 0, 4, 64]),
        timeout=st.sampled_from([None, 25.0, 500.0]),
    )


class TestConservation:
    @given(config=_configs(), seed=st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_every_arrival_is_accounted_for(self, config, seed):
        trace = make_trace(seed=seed)
        events = []
        from repro.policies import make_policy
        from repro.serving import serve

        policy = make_policy("item-lru", 16, trace.mapping)
        result = serve(
            policy, trace, config, on_event=lambda n, t, i: events.append((n, t, i))
        )
        assert result.arrivals == len(trace.items)
        assert result.arrivals == result.completions + result.dropped
        # Dropped requests never touch the cache.
        assert result.sim.accesses == result.arrivals - result.dropped
        # Per-class latency histograms partition the completions.
        assert (
            sum(h.count for h in result.latency_by_kind.values())
            == result.latency.count
            == result.completions
        )
        arrivals = sum(1 for n, _, _ in events if n == "arrival")
        dones = sum(1 for n, _, _ in events if n == "done")
        drops = sum(1 for n, _, _ in events if n.startswith("drop_"))
        assert arrivals == result.arrivals
        assert dones == result.completions
        assert drops == result.dropped

    @given(config=_configs())
    @settings(max_examples=30, deadline=None)
    def test_event_times_monotone_through_serve(self, config):
        trace = make_trace()
        times = []
        from repro.policies import make_policy
        from repro.serving import serve

        policy = make_policy("item-lru", 16, trace.mapping)
        serve(policy, trace, config, on_event=lambda n, t, i: times.append(t))
        assert all(a <= b for a, b in zip(times, times[1:]))
        assert times and times[0] >= 0.0


class TestLittlesLaw:
    @given(
        config=st.builds(
            ServingConfig,
            arrival=st.sampled_from(
                [
                    ArrivalSpec(process="poisson", rate=0.04, seed=1),
                    ArrivalSpec(process="mmpp", rate=0.02, seed=2),
                    ArrivalSpec(process="closed", clients=3, think=5.0, seed=3),
                ]
            ),
            service=st.sampled_from(
                [
                    ServiceModel(t_hit=1.0, t_miss=40.0),
                    ServiceModel(t_hit=1.0, t_miss=40.0, dist="exponential"),
                ]
            ),
            concurrency=st.integers(min_value=1, max_value=3),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_exact_on_drop_free_runs(self, config):
        """Start-empty/end-empty with no drops: ∫N dt == Σ sojourns,
        so L == λW to float rounding (not statistically, *exactly*)."""
        result = serve_policy("item-lru", 16, make_trace(), config)
        assert result.dropped == 0
        assert math.isclose(
            result.area_in_system, result.sojourn_sum, rel_tol=1e-9
        )
        assert math.isclose(
            result.little_l,
            result.little_lambda * result.little_w,
            rel_tol=1e-9,
        )

    def test_long_run_l_matches_lambda_w(self):
        config = ServingConfig(
            arrival=ArrivalSpec(process="poisson", rate=0.02, seed=9),
            service=ServiceModel(t_hit=1.0, t_miss=60.0),
            concurrency=2,
        )
        result = serve_policy(
            "item-lru", 32, make_trace(length=20_000, universe=256), config
        )
        assert result.completions == 20_000
        assert math.isclose(
            result.little_l, result.little_lambda * result.little_w, rel_tol=1e-9
        )
        assert result.little_l > 0


class TestMM1:
    @pytest.mark.parametrize("rho", [0.3, 0.6])
    def test_mean_sojourn_matches_theory(self, rho):
        """Degenerate no-cache config == M/M/1: service is Exp(1/μ)
        regardless of hit/miss (``t_miss=0``), one server, Poisson
        arrivals at ``λ = ρμ``.  Mean sojourn must be ``1/(μ-λ)``.

        Tolerance: the sojourn-time variance of M/M/1 is ``1/(μ-λ)²``
        and samples are positively correlated; a ±5σ/√n band with a 3×
        correlation inflation keeps false failures out while still
        catching any systematic error in the queue (a broken queue is
        off by O(W), far outside the band).
        """
        n = 60_000
        mu = 1.0  # t_hit = 1.0, exponential
        lam = rho * mu
        config = ServingConfig(
            arrival=ArrivalSpec(process="poisson", rate=lam, seed=11),
            service=ServiceModel(
                t_hit=1.0 / mu, t_miss=0.0, dist="exponential", seed=13
            ),
            concurrency=1,
        )
        result = serve_policy(
            "item-lru", 16, make_trace(length=n, universe=512), config
        )
        expected = 1.0 / (mu - lam)
        tolerance = 5.0 * 3.0 * expected / math.sqrt(n)
        assert abs(result.mean_latency - expected) < tolerance, (
            result.mean_latency,
            expected,
            tolerance,
        )

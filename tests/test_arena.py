"""Shared-memory trace arena: lifecycle, crash-safety, and fallback.

The arena is a pure optimization, so the properties worth pinning are
the ones that make it *safe* to rely on: attached traces are
bit-identical to the published ones (arrays, mapping, metadata,
fingerprint), the publisher's segment survives a SIGKILL'd worker that
held an attachment, close/unlink are idempotent, and every failure
mode degrades to the pickle fallback instead of erroring.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal

import numpy as np
import pytest

from repro.core import arena
from repro.core.mapping import ExplicitBlockMapping, FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError

pytestmark = pytest.mark.skipif(
    not arena.shared_memory_available(),
    reason="platform has no usable multiprocessing.shared_memory",
)


@pytest.fixture
def fixed_trace() -> Trace:
    rng = np.random.default_rng(11)
    return Trace(
        rng.integers(0, 256, 2000, dtype=np.int64),
        FixedBlockMapping(universe=256, block_size=8),
        {"generator": "uniform", "seed": 11},
    )


@pytest.fixture
def ragged_trace() -> Trace:
    mapping = ExplicitBlockMapping.from_groups(
        [[0], [1, 2], [3, 4, 5], [6, 7, 8, 9], [10], [11, 12, 13]],
        max_block_size=4,
    )
    return Trace(
        np.array([0, 3, 9, 13, 1, 2, 0, 10, 5, 5], dtype=np.int64),
        mapping,
        {"generator": "hand"},
    )


@pytest.fixture(autouse=True)
def _detach_after():
    yield
    arena.detach_all()


def _fork_ctx():
    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    return multiprocessing.get_context("fork")


def test_publish_attach_round_trip(fixed_trace):
    published = arena.publish(fixed_trace)
    assert published is not None
    with published:
        attached = arena.attach(published.handle)
        assert np.array_equal(attached.items, fixed_trace.items)
        assert np.array_equal(
            attached.block_trace(), fixed_trace.block_trace()
        )
        assert attached.metadata == fixed_trace.metadata
        assert attached.mapping.universe == fixed_trace.mapping.universe
        assert (
            attached.mapping.max_block_size
            == fixed_trace.mapping.max_block_size
        )


def test_attached_trace_inherits_fingerprint_without_rehashing(fixed_trace):
    published = arena.publish(fixed_trace)
    with published:
        attached = arena.attach(published.handle)
        # The handle carries the digest; attach must short-circuit the
        # sha256 (content addressing and the compile memo key off it).
        assert attached._fp == fixed_trace.fingerprint()
        assert attached.fingerprint() == fixed_trace.fingerprint()


def test_attached_arrays_are_read_only_views(fixed_trace):
    published = arena.publish(fixed_trace)
    with published:
        attached = arena.attach(published.handle)
        assert not attached.items.flags.writeable
        assert not attached.items.flags.owndata
        with pytest.raises(ValueError):
            attached.items[0] = 99


def test_attach_is_cached_per_process(fixed_trace):
    published = arena.publish(fixed_trace)
    with published:
        first = arena.attach(published.handle)
        again = arena.attach(pickle.loads(pickle.dumps(published.handle)))
        assert again is first  # keyed by segment name, not handle identity


def test_resolve_passthrough(fixed_trace):
    assert arena.resolve(fixed_trace) is fixed_trace
    assert arena.resolve(42) == 42
    published = arena.publish(fixed_trace)
    with published:
        assert arena.resolve(published.handle).fingerprint() == (
            fixed_trace.fingerprint()
        )


def test_explicit_mapping_round_trip(ragged_trace):
    published = arena.publish(ragged_trace)
    assert published is not None
    with published:
        attached = arena.attach(published.handle)
        assert np.array_equal(
            attached.block_trace(), ragged_trace.block_trace()
        )
        assert attached.fingerprint() == ragged_trace.fingerprint()
        universe = ragged_trace.mapping.universe
        assert np.array_equal(
            attached.mapping.blocks_of(np.arange(universe)),
            ragged_trace.mapping.blocks_of(np.arange(universe)),
        )


def test_worker_attach_across_fork(fixed_trace):
    ctx = _fork_ctx()
    published = arena.publish(fixed_trace)

    def child(conn, handle_bytes):
        trace = arena.resolve(pickle.loads(handle_bytes))
        conn.send((trace.fingerprint(), int(trace.items.sum())))
        conn.close()

    with published:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=child,
            args=(child_conn, pickle.dumps(published.handle)),
        )
        proc.start()
        fingerprint, items_sum = parent_conn.recv()
        proc.join()
    assert fingerprint == fixed_trace.fingerprint()
    assert items_sum == int(fixed_trace.items.sum())


def test_segment_survives_sigkilled_worker(fixed_trace):
    """Crash injection: a killed attacher must not orphan-unlink the arena."""
    ctx = _fork_ctx()
    published = arena.publish(fixed_trace)

    def hold(conn, handle_bytes):
        arena.resolve(pickle.loads(handle_bytes))
        conn.send("attached")
        signal.pause()  # hold the attachment until killed

    def reread(conn, handle_bytes):
        trace = arena.resolve(pickle.loads(handle_bytes))
        conn.send(int(trace.items.sum()))
        conn.close()

    with published:
        handle_bytes = pickle.dumps(published.handle)
        parent_conn, child_conn = ctx.Pipe()
        victim = ctx.Process(target=hold, args=(child_conn, handle_bytes))
        victim.start()
        assert parent_conn.recv() == "attached"
        os.kill(victim.pid, signal.SIGKILL)
        victim.join()
        assert victim.exitcode == -signal.SIGKILL
        # A fresh worker can still attach: the publisher's segment
        # survived the crash.
        parent2, child2 = ctx.Pipe()
        fresh = ctx.Process(target=reread, args=(child2, handle_bytes))
        fresh.start()
        assert parent2.recv() == int(fixed_trace.items.sum())
        fresh.join()


def test_close_is_idempotent_and_attach_after_close_fails(fixed_trace):
    published = arena.publish(fixed_trace)
    name = published.handle.name
    published.close()
    published.close()  # second close is a no-op, never raises
    arena.detach_all()
    stale = arena.ArenaHandle(
        name=name,
        fingerprint=fixed_trace.fingerprint(),
        n=len(fixed_trace),
        mapping_kind="fixed",
        universe=fixed_trace.mapping.universe,
        max_block_size=fixed_trace.mapping.max_block_size,
    )
    with pytest.raises(ConfigurationError, match="cannot attach"):
        arena.attach(stale)


def test_detach_all_forces_fresh_attach(fixed_trace):
    published = arena.publish(fixed_trace)
    with published:
        first = arena.attach(published.handle)
        arena.detach_all()
        second = arena.attach(published.handle)
        assert second is not first
        assert np.array_equal(second.items, fixed_trace.items)


def test_env_gate_forces_pickle_fallback(fixed_trace, monkeypatch):
    monkeypatch.setenv(arena.DISABLE_ENV, "1")
    assert arena.shared_memory_available() is False
    assert arena.publish(fixed_trace) is None
    monkeypatch.delenv(arena.DISABLE_ENV)
    assert arena.shared_memory_available() is True


def test_publish_returns_none_for_unknown_mapping(fixed_trace):
    class WeirdMapping:
        universe = 8
        max_block_size = 2

    weird = Trace(np.array([0, 1], dtype=np.int64), WeirdMapping())
    assert arena.publish(weird) is None

"""Unit tests for the intrusive linked-list LRU."""

import pytest

from repro.structs.linked_lru import LinkedLRU


def test_empty_properties():
    lru = LinkedLRU()
    assert len(lru) == 0
    assert not lru
    assert 1 not in lru
    assert list(lru) == []


def test_insert_and_order_mru_first():
    lru = LinkedLRU()
    for x in (1, 2, 3):
        lru.insert_mru(x)
    assert list(lru) == [3, 2, 1]
    assert list(lru.keys_lru_to_mru()) == [1, 2, 3]
    assert lru.mru_key() == 3
    assert lru.lru_key() == 1


def test_touch_moves_to_front():
    lru = LinkedLRU()
    for x in (1, 2, 3):
        lru.insert_mru(x)
    lru.touch(1)
    assert list(lru) == [1, 3, 2]
    assert lru.lru_key() == 2


def test_demote_moves_to_back():
    lru = LinkedLRU()
    for x in (1, 2, 3):
        lru.insert_mru(x)
    lru.demote(3)
    assert lru.lru_key() == 3


def test_insert_lru_places_at_cold_end():
    lru = LinkedLRU()
    lru.insert_mru(1)
    lru.insert_lru(2)
    assert lru.lru_key() == 2


def test_pop_lru_and_mru():
    lru = LinkedLRU()
    for x in (1, 2, 3):
        lru.insert_mru(x, value=x * 10)
    assert lru.pop_lru() == (1, 10)
    assert lru.pop_mru() == (3, 30)
    assert list(lru) == [2]


def test_pop_from_empty_raises():
    lru = LinkedLRU()
    with pytest.raises(KeyError):
        lru.pop_lru()
    with pytest.raises(KeyError):
        lru.pop_mru()
    with pytest.raises(KeyError):
        lru.lru_key()
    with pytest.raises(KeyError):
        lru.mru_key()


def test_duplicate_insert_raises():
    lru = LinkedLRU()
    lru.insert_mru(1)
    with pytest.raises(KeyError):
        lru.insert_mru(1)
    with pytest.raises(KeyError):
        lru.insert_lru(1)


def test_remove_returns_value_and_unlinks():
    lru = LinkedLRU()
    for x in (1, 2, 3):
        lru.insert_mru(x, value=str(x))
    assert lru.remove(2) == "2"
    assert 2 not in lru
    assert list(lru) == [3, 1]


def test_values_and_set_value():
    lru = LinkedLRU()
    lru.insert_mru("a", value=1)
    assert lru.get("a") == 1
    lru.set_value("a", 2)
    assert lru.get("a") == 2
    assert lru.get("missing", "default") == "default"


def test_set_value_preserves_order():
    lru = LinkedLRU()
    lru.insert_mru(1)
    lru.insert_mru(2)
    lru.set_value(1, "x")
    assert list(lru) == [2, 1]


def test_clear():
    lru = LinkedLRU()
    for x in range(5):
        lru.insert_mru(x)
    lru.clear()
    assert len(lru) == 0
    lru.insert_mru(7)
    assert list(lru) == [7]


def test_single_element_edge_cases():
    lru = LinkedLRU()
    lru.insert_mru(42)
    assert lru.lru_key() == lru.mru_key() == 42
    lru.touch(42)
    assert list(lru) == [42]
    assert lru.pop_lru() == (42, None)
    assert len(lru) == 0


def test_interleaved_operations_maintain_consistency():
    lru = LinkedLRU()
    for x in range(10):
        lru.insert_mru(x)
    for x in range(0, 10, 2):
        lru.touch(x)
    for x in range(1, 10, 2):
        lru.remove(x)
    assert sorted(lru) == [0, 2, 4, 6, 8]
    assert lru.lru_key() == 0  # touched first among evens

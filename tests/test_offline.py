"""Offline package tests: VSC, reduction, exact solver, bounds, BeladyGC."""

import numpy as np
import pytest

from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError, SolverError
from repro.offline import (
    BeladyGC,
    ReducedInstance,
    VSCInstance,
    block_belady_lower,
    distinct_blocks_lower,
    gc_opt_lower,
    gc_opt_upper,
    reduce_vsc_to_gc,
    solve_gc_exact,
    solve_vsc_exact,
)
from repro.offline.reduction import figure2_instance
from repro.offline.vsc import scale_to_integral


class TestVSC:
    def test_simple_instance(self):
        # Two unit items, cache 1: alternating trace faults every time.
        inst = VSCInstance.build([1, 1], 1, [0, 1, 0, 1])
        assert solve_vsc_exact(inst) == 4

    def test_cache_fits_everything(self):
        inst = VSCInstance.build([1, 2], 3, [0, 1, 0, 1, 0])
        assert solve_vsc_exact(inst) == 2  # only cold misses

    def test_item_larger_than_cache_always_faults(self):
        inst = VSCInstance.build([5, 1], 3, [0, 1, 0, 1, 0])
        # Item 0 can never be cached: 3 faults; item 1 cached after first.
        assert solve_vsc_exact(inst) == 4

    def test_eviction_choice_matters(self):
        # Cache 3, sizes [2, 2, 1], trace 0 1 2 1: serving 1 forces 0
        # out (2+2 > 3), then {1, 2} coexist and the last access hits.
        inst = VSCInstance.build([2, 2, 1], 3, [0, 1, 2, 1])
        assert solve_vsc_exact(inst) == 3
        # Whereas ending on 0 cannot be saved: every access faults.
        inst2 = VSCInstance.build([2, 2, 1], 3, [0, 1, 2, 0])
        assert solve_vsc_exact(inst2) == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VSCInstance.build([], 1, [])
        with pytest.raises(ConfigurationError):
            VSCInstance.build([0], 1, [0])
        with pytest.raises(ConfigurationError):
            VSCInstance.build([1], 0, [0])
        with pytest.raises(ConfigurationError):
            VSCInstance.build([1], 1, [5])

    def test_state_limit(self):
        inst = VSCInstance.build([1] * 6, 3, list(range(6)) * 4)
        with pytest.raises(SolverError):
            solve_vsc_exact(inst, state_limit=5)

    def test_scale_to_integral(self):
        sizes, cap = scale_to_integral([0.5, 1.5, 1.0], 2.5)
        assert sizes == [1, 3, 2]
        assert cap == 5

    def test_scale_preserves_integers(self):
        sizes, cap = scale_to_integral([2, 3], 4)
        assert sizes == [2, 3]
        assert cap == 4


class TestReduction:
    def test_figure2_structure(self):
        vsc, red = figure2_instance()
        assert red.active_sets == ((0, 1), (2,), (3, 4, 5))
        # Trace: 2*2 + 1 + 2*2 + 3*3 + 2*2 accesses = 22.
        assert len(red.trace) == 22
        assert red.capacity == 3

    def test_figure2_costs_equal(self):
        vsc, red = figure2_instance()
        assert solve_vsc_exact(vsc) == solve_gc_exact(red.trace, red.capacity)

    def test_block_capacity_floor(self):
        vsc = VSCInstance.build([3, 1], 3, [0, 1])
        with pytest.raises(ConfigurationError):
            reduce_vsc_to_gc(vsc, block_capacity=2)

    def test_block_capacity_slack_allowed(self):
        vsc = VSCInstance.build([2, 1], 2, [0, 1, 0])
        red = reduce_vsc_to_gc(vsc, block_capacity=10)
        assert red.trace.mapping.max_block_size == 10

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances_preserve_optimum(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 4))
        sizes = [int(rng.integers(1, 4)) for _ in range(n)]
        cap = max(sizes) + int(rng.integers(0, 3))
        trace = [int(rng.integers(n)) for _ in range(int(rng.integers(4, 8)))]
        vsc = VSCInstance.build(sizes, cap, trace)
        red = reduce_vsc_to_gc(vsc)
        assert solve_vsc_exact(vsc) == solve_gc_exact(red.trace, red.capacity)


class TestExactGC:
    def test_empty_trace(self):
        mapping = FixedBlockMapping(universe=4, block_size=2)
        trace = Trace(np.array([], dtype=np.int64), mapping)
        assert solve_gc_exact(trace, 2) == 0

    def test_all_hits_after_one_load(self):
        mapping = FixedBlockMapping(universe=4, block_size=2)
        trace = Trace(np.array([0, 1, 0, 1]), mapping)
        assert solve_gc_exact(trace, 2) == 1  # load {0,1} once

    def test_subset_loads_beat_item_loads(self):
        mapping = FixedBlockMapping(universe=8, block_size=4)
        trace = Trace(np.array([0, 1, 2, 3]), mapping)
        assert solve_gc_exact(trace, 4) == 1

    def test_capacity_one(self):
        mapping = FixedBlockMapping(universe=4, block_size=2)
        trace = Trace(np.array([0, 1, 0]), mapping)
        assert solve_gc_exact(trace, 1) == 3

    def test_never_loads_useless_items(self):
        # Two interleaved blocks; cache 2; optimal picks subsets wisely.
        mapping = FixedBlockMapping(universe=8, block_size=4)
        trace = Trace(np.array([0, 4, 1, 5, 0, 4]), mapping)
        opt = solve_gc_exact(trace, 4)
        assert opt == 2  # load {0,1} and {4,5}

    def test_state_limit(self):
        mapping = FixedBlockMapping(universe=12, block_size=4)
        trace = Trace(
            np.random.default_rng(0).integers(0, 12, 18, dtype=np.int64),
            mapping,
        )
        with pytest.raises(SolverError):
            solve_gc_exact(trace, 6, state_limit=10)


class TestLowerBounds:
    def test_distinct_blocks(self):
        mapping = FixedBlockMapping(universe=16, block_size=4)
        trace = Trace(np.array([0, 1, 5, 9]), mapping)
        assert distinct_blocks_lower(trace) == 3

    def test_block_belady_on_cycle(self):
        mapping = FixedBlockMapping(universe=12, block_size=4)
        # Blocks 0,1,2 cycling; capacity 2 block-slots => Belady magic.
        trace = Trace(np.array([0, 4, 8] * 4), mapping)
        lb = block_belady_lower(trace, 2)
        assert 3 <= lb <= 12

    def test_lower_at_most_exact(self):
        mapping = FixedBlockMapping(universe=8, block_size=4)
        rng = np.random.default_rng(1)
        for _ in range(6):
            trace = Trace(rng.integers(0, 8, 12, dtype=np.int64), mapping)
            k = int(rng.integers(2, 5))
            assert gc_opt_lower(trace, k) <= solve_gc_exact(trace, k)

    def test_rejects_bad_capacity(self):
        mapping = FixedBlockMapping(universe=8, block_size=4)
        trace = Trace(np.array([0]), mapping)
        with pytest.raises(ConfigurationError):
            block_belady_lower(trace, 0)


class TestBeladyGC:
    def test_upper_at_least_exact(self):
        mapping = FixedBlockMapping(universe=8, block_size=4)
        rng = np.random.default_rng(2)
        for _ in range(6):
            trace = Trace(rng.integers(0, 8, 12, dtype=np.int64), mapping)
            k = int(rng.integers(2, 5))
            assert gc_opt_upper(trace, k) >= solve_gc_exact(trace, k)

    def test_beladygc_often_matches_exact_on_reduction_traces(self):
        vsc, red = figure2_instance()
        exact = solve_gc_exact(red.trace, red.capacity)
        heuristic = simulate(
            BeladyGC(red.capacity, red.trace.mapping), red.trace
        ).misses
        assert heuristic == exact

    def test_beladygc_loads_useful_neighbours(self):
        mapping = FixedBlockMapping(universe=8, block_size=4)
        trace = Trace(np.array([0, 1, 2, 3]), mapping)
        res = simulate(BeladyGC(4, mapping), trace)
        assert res.misses == 1

    def test_beladygc_skips_dead_neighbours(self):
        mapping = FixedBlockMapping(universe=8, block_size=4)
        trace = Trace(np.array([0, 4, 0, 4]), mapping)
        res = simulate(BeladyGC(2, mapping), trace)
        # Loading dead neighbours would evict live items; BeladyGC
        # loads only the two used items and hits the repeats.
        assert res.misses == 2

    def test_beladygc_referee_validated(self):
        mapping = FixedBlockMapping(universe=64, block_size=8)
        trace = Trace(
            np.random.default_rng(3).integers(0, 64, 1000, dtype=np.int64),
            mapping,
        )
        res = simulate(BeladyGC(16, mapping), trace, cross_check_every=50)
        assert res.accesses == 1000

    def test_bracket_sandwiches_exact(self):
        mapping = FixedBlockMapping(universe=8, block_size=4)
        rng = np.random.default_rng(4)
        for _ in range(4):
            trace = Trace(rng.integers(0, 8, 10, dtype=np.int64), mapping)
            k = 3
            exact = solve_gc_exact(trace, k)
            assert gc_opt_lower(trace, k) <= exact <= gc_opt_upper(trace, k)

"""Offline Belady policies: optimality at B=1, block variant, safety."""

import numpy as np
import pytest

from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError, ProtocolViolation
from repro.offline.exact import solve_gc_exact
from repro.policies import BeladyBlock, BeladyItem, ItemLRU
from repro.policies.belady import next_use_array


def test_next_use_array_basic():
    arr = next_use_array(np.array([1, 2, 1, 1, 3]))
    big = np.iinfo(np.int64).max
    assert arr.tolist() == [2, big, 3, big, big]


def test_next_use_array_empty():
    assert next_use_array(np.array([], dtype=np.int64)).size == 0


def test_requires_prepare():
    mapping = FixedBlockMapping(universe=8, block_size=2)
    p = BeladyItem(2, mapping)
    with pytest.raises(ConfigurationError):
        p.access(0)


def test_out_of_order_replay_rejected():
    mapping = FixedBlockMapping(universe=8, block_size=2)
    trace = Trace(np.array([0, 1, 2]), mapping)
    p = BeladyItem(2, mapping)
    p.prepare(trace)
    with pytest.raises(ProtocolViolation):
        p.access(1)  # trace starts with 0


def test_belady_classic_example():
    """Textbook MIN behaviour on a known trace."""
    mapping = FixedBlockMapping(universe=8, block_size=1)
    # k=2: 0 1 2 0 1 -> misses 0,1,2 then hits 0,1 iff 2 evicted... but
    # Belady evicts furthest-future at the miss on 2: both 0 and 1 are
    # used again (0 sooner), so it evicts 1; then 0 hits, 1 misses.
    trace = Trace(np.array([0, 1, 2, 0, 1]), mapping)
    res = simulate(BeladyItem(2, mapping), trace)
    assert res.misses == 4


def test_belady_optimal_vs_lru_when_b1():
    """At B=1 Belady is OPT: never worse than LRU, matches exact DP."""
    mapping = FixedBlockMapping(universe=6, block_size=1)
    rng = np.random.default_rng(0)
    for trial in range(6):
        trace = Trace(
            rng.integers(0, 6, size=12, dtype=np.int64), mapping
        )
        k = int(rng.integers(2, 4))
        belady = simulate(BeladyItem(k, mapping), trace).misses
        lru = simulate(ItemLRU(k, mapping), trace).misses
        exact = solve_gc_exact(trace, k)
        assert belady <= lru
        assert belady == exact  # B=1: GC == traditional, Belady is OPT


def test_belady_block_scan():
    mapping = FixedBlockMapping(universe=32, block_size=4)
    trace = Trace(np.arange(32), mapping)
    res = simulate(BeladyBlock(8, mapping), trace)
    assert res.misses == 8
    assert res.spatial_hits == 24


def test_belady_block_keeps_soonest_blocks():
    mapping = FixedBlockMapping(universe=16, block_size=4)
    # Blocks 0,1,2 accessed; then block 0 again. Capacity 8 = 2 blocks.
    trace = Trace(np.array([0, 4, 8, 0]), mapping)
    res = simulate(BeladyBlock(8, mapping), trace)
    # At the miss on 8, blocks 0 and 1 are cached; 0 is used again so
    # Belady evicts block 1, and the final access hits.
    assert res.misses == 3
    assert res.temporal_hits == 1


def test_belady_block_respects_capacity_referee():
    mapping = FixedBlockMapping(universe=64, block_size=4)
    trace = Trace(
        np.random.default_rng(5).integers(0, 64, 800, dtype=np.int64), mapping
    )
    res = simulate(BeladyBlock(10, mapping), trace, cross_check_every=50)
    assert res.accesses == 800


def test_belady_item_never_beats_exact_gc_optimum():
    """Belady-item is feasible for GC, so exact OPT <= its misses."""
    mapping = FixedBlockMapping(universe=8, block_size=4)
    rng = np.random.default_rng(3)
    for _ in range(5):
        trace = Trace(rng.integers(0, 8, 10, dtype=np.int64), mapping)
        belady = simulate(BeladyItem(3, mapping), trace).misses
        exact = solve_gc_exact(trace, 3)
        assert exact <= belady


def test_belady_block_tiny_capacity_trim():
    mapping = FixedBlockMapping(universe=8, block_size=4)
    trace = Trace(np.array([0, 1, 2, 3, 0]), mapping)
    res = simulate(BeladyBlock(2, mapping), trace, cross_check_every=1)
    assert res.accesses == 5  # referee-validated despite trimming

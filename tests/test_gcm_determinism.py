"""Seeded-RNG determinism of the GCM kernel family.

The paper's headline policy (GCM) is randomized; its fast kernels
reproduce the referee's PCG64 draw sequence *exactly* (same
``default_rng(seed)``, same ``integers``/``shuffle`` call order), so a
seeded run is one deterministic computation no matter which engine —
or how many processes — executes it.  These tests regression-pin that
contract:

* referee vs kernel bit-identity across a seed grid for every GCM
  variant (aggregates and the per-access outcome stream);
* the same seed always reproduces the same result, and different
  seeds genuinely diverge (the seed is actually plumbed through);
* ``multi_policy_replay`` keeps each seeded cell's generator in its
  own kernel closure — chunked traversal and cell order cannot
  perturb the draw sequence;
* a parallel sweep (``REPRO_JOBS`` workers) over seeded GCM cells is
  bit-identical to the serial sweep.
"""

import numpy as np
import pytest

from repro.core.conformance import assert_conformant
from repro.core.engine import simulate
from repro.core.fast import fast_simulate, multi_policy_replay
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.policies import make_policy
from repro.workloads import hot_and_stream, zipf_items

GCM_VARIANTS = ("gcm", "gcm-markall", "gcm-partial")
SEEDS = (0, 1, 7, 42, 1234)


@pytest.fixture(scope="module")
def trace():
    return zipf_items(2500, universe=96, alpha=1.0, block_size=8, seed=21)


@pytest.fixture(scope="module")
def spatial_trace():
    return hot_and_stream(2500, hot_items=24, stream_blocks=24, block_size=8, seed=22)


@pytest.mark.parametrize("policy", GCM_VARIANTS)
@pytest.mark.parametrize("seed", SEEDS)
def test_referee_and_kernel_agree_for_every_seed(policy, seed, trace):
    assert_conformant(policy, 24, trace, seed=seed)


@pytest.mark.parametrize("policy", GCM_VARIANTS)
def test_same_seed_reproduces_different_seeds_diverge(policy, spatial_trace):
    def run(seed):
        return fast_simulate(
            make_policy(policy, 16, spatial_trace.mapping, seed=seed),
            spatial_trace,
        )

    assert run(3) == run(3)
    # At least one other seed must change the outcome — a kernel that
    # ignored the seed would pass the per-seed conformance grid (the
    # referee run would drift identically) yet fail here.
    baseline = run(3)
    assert any(run(s).misses != baseline.misses for s in (5, 11, 29, 61)), (
        f"{policy}: seeds 5/11/29/61 all reproduced seed 3's miss count; "
        "is the seed actually reaching the RNG?"
    )


def test_multi_policy_replay_preserves_seeded_streams(trace):
    """Seeded cells in one shared traversal match their solo replays,
    regardless of chunking or which other cells ride along."""
    cells = [
        ("gcm", 24, {"seed": 5}),
        ("item-lru", 24),
        ("gcm-markall", 24, {"seed": 5}),
        ("gcm", 24, {"seed": 9}),
        ("item-random", 24, {"seed": 5}),
        ("gcm-partial", 24, {"load_count": 3, "seed": 5}),
    ]
    batched = multi_policy_replay(cells, trace)
    chunked = multi_policy_replay(cells, trace, chunk=101)
    for cell, got, got_chunked in zip(cells, batched, chunked):
        name, cap = cell[0], cell[1]
        kwargs = cell[2] if len(cell) == 3 else {}
        solo = simulate(
            make_policy(name, cap, trace.mapping, **kwargs), trace
        )
        assert got == solo, cell
        assert got_chunked == solo, cell


def test_parallel_sweep_is_bit_identical_for_seeded_gcm(
    trace, monkeypatch
):
    """REPRO_JOBS workers replay seeded GCM cells exactly like serial.

    Each worker builds its own policy instance and RNG from the cell's
    seed, so process boundaries cannot leak generator state between
    cells; rows must match the serial sweep bit for bit.
    """
    from repro.analysis.sweep import grid, simulate_cell, sweep

    cells = grid(
        policy=list(GCM_VARIANTS),
        capacity=[8, 24],
        trace=[trace],
        seed=[0, 7],
    )
    serial = sweep(simulate_cell, cells)
    monkeypatch.setenv("REPRO_JOBS", "3")
    parallel = sweep(simulate_cell, cells, parallel=True)
    assert len(serial) == len(parallel) == len(cells)
    for row_s, row_p in zip(serial, parallel):
        for key in ("policy", "capacity", "seed", "misses",
                    "temporal_hits", "spatial_hits", "miss_ratio"):
            assert row_s[key] == row_p[key], (key, row_s, row_p)

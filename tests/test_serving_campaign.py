"""Serving cells through the campaign layer: determinism, crash
resume, and the stale-cell regression.

Three guarantees:

* **Seeded determinism** — same (policy, trace, serving config) ⇒
  bit-identical :meth:`ServingResult.fields` payloads, including every
  histogram bucket, across independent runs.
* **Crash resume** — extending the existing SIGKILL fault-injection
  suite to serving cells: a worker killed mid-serving-cell retries,
  and an interrupted ``run``/``resume`` pair lands on payloads
  bit-identical to an uninterrupted run.
* **Stale-cell regression** — the serving config is part of the cell's
  content address, so changing any arrival/service/queue parameter
  (or flipping a cell between offline and serving) can never be
  served from a stale store entry.  Guards the fix for
  ``campaign status``/``collect_rows``, which previously hashed cells
  without serving inputs.
"""

import multiprocessing
import os
import signal

import pytest

import repro.campaign.runner as runner_mod
from repro.campaign import CampaignRunner, CampaignSpec, RetryPolicy, TraceSpec
from repro.campaign.cli import collect_rows
from repro.campaign.spec import cell_hash
from repro.serving import ArrivalSpec, ServiceModel, ServingConfig, serve_policy

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
fork_only = pytest.mark.skipif(
    not _HAS_FORK, reason="fault injection monkeypatches across fork"
)

TRACE = TraceSpec(
    kind="workload",
    name="markov",
    params={"length": 1500, "universe": 256, "block_size": 4, "seed": 3},
)


def serving_dict(rate=0.02, seed=1):
    return ServingConfig(
        arrival=ArrivalSpec(process="poisson", rate=rate, seed=seed),
        service=ServiceModel(t_hit=1.0, t_miss=40.0, t_item=1.0),
        concurrency=2,
    ).as_dict()


def make_spec(rate=0.02):
    return CampaignSpec.from_grid(
        name="serve",
        policies=["item-lru", "iblp"],
        capacities=[32],
        traces={"m": TRACE},
        fast=False,
        servings=[serving_dict(rate=rate)],
    )


def stored_payloads(report):
    """hash → stored fields, for bit-level comparison across runs."""
    return {
        o.hash: o.result.fields() for o in report.done if o.result is not None
    }


class TestSeededDeterminism:
    def test_identical_histogram_payloads_across_runs(self):
        trace = TRACE.materialize()
        config = ServingConfig.from_dict(serving_dict())
        first = serve_policy("iblp", 32, trace, config)
        second = serve_policy("iblp", 32, trace, config)
        assert first.fields() == second.fields()
        assert first.latency.as_dict() == second.latency.as_dict()
        assert first.latency.as_dict()["count"] == 1500

    def test_campaign_runs_bit_identical(self, tmp_path):
        spec = make_spec()
        with CampaignRunner(tmp_path / "a", spec, store_sync=False) as runner:
            a = runner.run()
        with CampaignRunner(tmp_path / "b", spec, store_sync=False) as runner:
            b = runner.run()
        assert a.complete and b.complete
        assert stored_payloads(a) == stored_payloads(b)
        assert a.rows() == b.rows()


@fork_only
class TestServingCrashResume:
    def test_sigkilled_serving_cell_retries_bit_identical(
        self, tmp_path, monkeypatch
    ):
        spec = make_spec()
        with CampaignRunner(
            tmp_path / "clean", spec, store_sync=False
        ) as runner:
            clean = runner.run()
        real = runner_mod.execute_cell
        marker = tmp_path / "died-once"

        def kamikaze(cell, trace):
            if cell.policy == "iblp" and not marker.exists():
                marker.touch()
                os.kill(os.getpid(), signal.SIGKILL)
            return real(cell, trace)

        monkeypatch.setattr(runner_mod, "execute_cell", kamikaze)
        with CampaignRunner(
            tmp_path / "camp",
            spec,
            parallel=True,
            max_workers=2,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.01),
            store_sync=False,
        ) as runner:
            report = runner.run()
        assert marker.exists()
        assert report.complete
        errors = runner.journal.last_error_by_hash()
        assert any("WorkerDied" in e for e in errors.values())
        monkeypatch.setattr(runner_mod, "execute_cell", real)
        assert stored_payloads(report) == stored_payloads(clean)

    def test_resume_after_midrun_kill_is_memo_backed(
        self, tmp_path, monkeypatch
    ):
        """First run dies on the second cell every attempt (quarantine);
        resume recomputes only the missing cell and the final payloads
        are bit-identical to an uninterrupted run."""
        spec = make_spec()
        with CampaignRunner(
            tmp_path / "clean", spec, store_sync=False
        ) as runner:
            clean = runner.run()
        real = runner_mod.execute_cell

        def always_die(cell, trace):
            if cell.policy == "iblp":
                os.kill(os.getpid(), signal.SIGKILL)
            return real(cell, trace)

        monkeypatch.setattr(runner_mod, "execute_cell", always_die)
        with CampaignRunner(
            tmp_path / "camp",
            spec,
            parallel=True,
            max_workers=2,
            retry=RetryPolicy(max_attempts=2, backoff_base=0.01),
            store_sync=False,
        ) as runner:
            interrupted = runner.run()
        assert len(interrupted.quarantined) == 1
        assert len(interrupted.done) == 1
        monkeypatch.setattr(runner_mod, "execute_cell", real)
        with CampaignRunner(
            tmp_path / "camp", parallel=True, max_workers=2, store_sync=False
        ) as runner:
            resumed = runner.run()
        assert resumed.complete
        assert resumed.memo_hits == 1  # the cell that survived run 1
        assert stored_payloads(resumed) == stored_payloads(clean)


class TestServingConfigInContentAddress:
    """Regression: arrival params must invalidate memoized cells."""

    def test_hash_depends_on_serving_config(self):
        base = dict(
            policy="iblp",
            capacity=32,
            trace_fingerprint="f" * 64,
            fast=False,
            version="1.0",
        )
        offline = cell_hash(**base)
        served = cell_hash(**base, serving=serving_dict(rate=0.02))
        other_rate = cell_hash(**base, serving=serving_dict(rate=0.03))
        other_seed = cell_hash(**base, serving=serving_dict(seed=2))
        assert len({offline, served, other_rate, other_seed}) == 4

    def test_offline_hash_unchanged_by_serving_support(self):
        """``serving=None`` must hash exactly as before the serving
        layer existed — old stores stay valid."""
        import hashlib

        from repro.campaign.spec import canonical_json

        legacy = hashlib.sha256(
            canonical_json(
                {
                    "policy": "iblp",
                    "capacity": 32,
                    "policy_kwargs": {},
                    "trace_fingerprint": "f" * 64,
                    "fast": True,
                    "version": "1.0",
                }
            ).encode()
        ).hexdigest()
        assert (
            cell_hash("iblp", 32, "f" * 64, fast=True, version="1.0") == legacy
        )

    def test_changed_arrival_rate_never_reuses_stale_cells(self, tmp_path):
        with CampaignRunner(
            tmp_path, make_spec(rate=0.02), store_sync=False
        ) as runner:
            first = runner.run()
        assert first.complete and first.computed == 2
        # Re-point the same directory at a different arrival rate: the
        # store holds rate=0.02 rows, but every cell must recompute.
        with CampaignRunner(
            tmp_path, make_spec(rate=0.03), store_sync=False
        ) as runner:
            second = runner.run()
        assert second.complete
        assert second.memo_hits == 0
        assert second.computed == 2
        rate_cols = {row["offered_rate"] for row in collect_rows(tmp_path)}
        assert rate_cols == {0.03 * 1.0}
        # Same rate again: now it memoizes.
        with CampaignRunner(
            tmp_path, make_spec(rate=0.03), store_sync=False
        ) as runner:
            third = runner.run()
        assert third.memo_hits == 2 and third.computed == 0

    def test_status_and_export_see_only_matching_cells(self, tmp_path):
        """`campaign status`/`collect_rows` hash with the serving
        config: after a respec to new arrival params, previously
        stored rows are invisible (pending), not stale hits."""
        import argparse

        from repro.campaign.cli import run_campaign_command

        with CampaignRunner(
            tmp_path, make_spec(rate=0.02), store_sync=False
        ) as runner:
            runner.run()
        assert len(collect_rows(tmp_path)) == 2
        # Save a respec'd grid without running it.
        make_spec(rate=0.05).save(tmp_path)
        assert collect_rows(tmp_path) == []
        ns = argparse.Namespace(
            campaign_command="status", directory=str(tmp_path)
        )
        text, code = run_campaign_command(ns)
        assert "0/2 cells done" in text

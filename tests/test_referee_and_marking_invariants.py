"""Deeper referee coverage and marking-policy invariants.

Also pins the referee's behavior on the degenerate geometries the fast
replay kernels must honor bit-for-bit (see
``tests/test_fastpath_conformance.py`` for the differential side):
capacity ``k=1``, traditional ``B=1``, ragged final blocks, and
empty-trace replay.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Engine, simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ProtocolViolation
from repro.policies import GCM, ItemLRU, MarkAllGCM, MarkingLRU, make_policy, policy_names
from repro.policies.base import Policy
from repro.types import AccessOutcome

ONLINE = sorted(n for n in policy_names() if not n.startswith("belady"))


class _LyingPolicy(Policy):
    """Honest actions, dishonest resident_items() — for cross_check."""

    name = "liar"

    def __init__(self, capacity, mapping):
        super().__init__(capacity, mapping)
        self._inner = ItemLRU(capacity, mapping)

    def access(self, item):
        return self._inner.access(item)

    def contains(self, item):
        return self._inner.contains(item)

    def resident_items(self):
        return frozenset([999_999])  # a lie


def test_cross_check_catches_lying_residency():
    mapping = FixedBlockMapping(universe=1_000_000, block_size=4)
    policy = _LyingPolicy(4, mapping)
    engine = Engine(policy, mapping)
    engine.access(0)
    with pytest.raises(ProtocolViolation, match="residency mismatch"):
        engine.cross_check()


def test_cross_check_in_simulate_catches_liar():
    mapping = FixedBlockMapping(universe=1_000_000, block_size=4)
    trace = Trace(np.array([0, 1, 2]), mapping)
    with pytest.raises(ProtocolViolation):
        simulate(_LyingPolicy(4, mapping), trace, cross_check_every=1)


@settings(max_examples=40, deadline=None)
@given(
    items=st.lists(st.integers(0, 31), min_size=1, max_size=80),
    k=st.integers(2, 16),
)
def test_marking_invariants(items, k):
    """Marked items are always a subset of residents, never exceed k."""
    mapping = FixedBlockMapping(universe=32, block_size=4)
    policy = MarkingLRU(k, mapping)
    engine = Engine(policy, mapping)
    for item in items:
        engine.access(item)
        marked = policy.marked_items()
        assert marked <= policy.resident_items()
        assert len(marked) <= k


@settings(max_examples=40, deadline=None)
@given(
    items=st.lists(st.integers(0, 31), min_size=1, max_size=80),
    k=st.integers(2, 16),
    seed=st.integers(0, 3),
)
@pytest.mark.parametrize("cls", [GCM, MarkAllGCM])
def test_gcm_marking_invariants(cls, items, k, seed):
    mapping = FixedBlockMapping(universe=32, block_size=4)
    policy = cls(k, mapping, seed=seed)
    engine = Engine(policy, mapping)
    for item in items:
        engine.access(item)
        assert policy.marked_items() <= policy.resident_items()
        # The item just requested must be resident and marked.
        assert policy.contains(item)
        assert item in policy.marked_items()


# -- referee edge cases the fast kernels must also honor --------------------
@pytest.mark.parametrize("name", ONLINE)
def test_empty_trace_replay_is_all_zero(name):
    mapping = FixedBlockMapping(universe=16, block_size=4)
    trace = Trace(np.empty(0, dtype=np.int64), mapping)
    res = simulate(make_policy(name, 4, mapping), trace, cross_check_every=1)
    assert res.accesses == 0
    assert res.misses == res.temporal_hits == res.spatial_hits == 0
    assert res.loaded_items == res.evicted_items == 0
    assert res.miss_ratio == 0.0 and res.spatial_fraction == 0.0


@pytest.mark.parametrize("name", ONLINE)
def test_capacity_one_referee_invariants(name):
    """k=1: occupancy stays at one item; every distinct access misses
    unless it repeats the immediately-resident item."""
    mapping = FixedBlockMapping(universe=24, block_size=4)
    rng = np.random.default_rng(5)
    trace = Trace(rng.integers(0, 24, 300, dtype=np.int64), mapping)
    policy = make_policy(name, 1, mapping)
    engine = Engine(policy, mapping)
    for item in trace.items.tolist():
        engine.access(int(item))
        assert len(engine.resident) <= 1
    assert engine.result.accesses == 300


@pytest.mark.parametrize("name", ONLINE)
def test_block_size_one_is_traditional_caching(name):
    """B=1 degenerates to the traditional model: spatial hits are
    impossible and load sets are single items."""
    mapping = FixedBlockMapping(universe=24, block_size=1)
    rng = np.random.default_rng(6)
    trace = Trace(rng.integers(0, 24, 300, dtype=np.int64), mapping)
    res = simulate(make_policy(name, 6, mapping), trace, cross_check_every=10)
    assert res.spatial_hits == 0
    assert res.loaded_items == res.misses  # every load set is exactly {item}


@pytest.mark.parametrize("name", ONLINE)
def test_ragged_final_fixed_block(name):
    """universe % B != 0: the last block is short; the referee's
    load-subset validation must accept (only) its real members."""
    mapping = FixedBlockMapping(universe=14, block_size=4)
    assert mapping.items_in(3) == (12, 13)
    rng = np.random.default_rng(8)
    trace = Trace(rng.integers(0, 14, 300, dtype=np.int64), mapping)
    res = simulate(make_policy(name, 5, mapping), trace, cross_check_every=10)
    assert res.accesses == 300
    assert res.misses + res.hits == 300


def test_gcm_requested_item_never_displaced_within_access():
    """The §6 rule: side loads must not evict the requested item."""
    mapping = FixedBlockMapping(universe=64, block_size=8)
    rng = np.random.default_rng(0)
    policy = GCM(8, mapping, seed=1)  # capacity == block size: tight
    engine = Engine(policy, mapping)
    for item in rng.integers(0, 64, 500).tolist():
        engine.access(int(item))
        assert policy.contains(int(item))

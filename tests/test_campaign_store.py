"""Result store and journal: content addressing, crash recovery."""

import json

import pytest

from repro.campaign.journal import Journal
from repro.campaign.store import ResultStore


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path) as s:
        yield s


class TestResultStore:
    def test_roundtrip(self, store):
        payload = {"misses": 3, "miss_ratio": 0.125, "policy": "item-lru"}
        assert store.put("abc", payload)
        assert "abc" in store
        assert store.get("abc") == payload
        assert len(store) == 1

    def test_get_missing(self, store):
        assert store.get("nope") is None
        assert "nope" not in store

    def test_first_write_wins(self, store):
        assert store.put("h", {"v": 1})
        assert not store.put("h", {"v": 2})
        assert store.get("h") == {"v": 1}

    def test_float_round_trip_is_exact(self, store):
        # Bit-identical resume relies on JSON float round-tripping.
        value = 1.0 / 3.0
        store.put("f", {"ratio": value, "big": 1e300, "neg": -0.0})
        got = store.get("f")
        assert got["ratio"] == value
        assert got["big"] == 1e300

    def test_items_in_append_order(self, store):
        for i in range(5):
            store.put(f"h{i}", {"i": i})
        assert [h for h, _ in store.items()] == [f"h{i}" for i in range(5)]
        assert store.hashes() == {f"h{i}" for i in range(5)}

    def test_survives_reopen(self, tmp_path):
        with ResultStore(tmp_path) as s:
            s.put("x", {"v": 42})
        with ResultStore(tmp_path) as s:
            assert s.get("x") == {"v": 42}

    def test_reconcile_unindexed_complete_row(self, tmp_path):
        """Crash between JSONL append and SQLite commit: the complete
        but unindexed line is re-indexed on next open."""
        with ResultStore(tmp_path) as s:
            s.put("a", {"v": 1})
        # Simulate the post-append / pre-index crash by writing a row
        # behind the index's back.
        line = json.dumps({"hash": "b", "payload": {"v": 2}}) + "\n"
        with open(tmp_path / "results.jsonl", "a") as f:
            f.write(line)
        with ResultStore(tmp_path) as s:
            assert s.get("a") == {"v": 1}
            assert s.get("b") == {"v": 2}
            assert len(s) == 2

    def test_reconcile_truncates_torn_tail(self, tmp_path):
        """Crash mid-append leaves a torn line; it is dropped so later
        appends cannot fuse with it."""
        with ResultStore(tmp_path) as s:
            s.put("a", {"v": 1})
        with open(tmp_path / "results.jsonl", "a") as f:
            f.write('{"hash": "torn", "payl')  # no newline
        with ResultStore(tmp_path) as s:
            assert len(s) == 1
            assert "torn" not in s
            assert s.put("c", {"v": 3})
        with ResultStore(tmp_path) as s:
            assert s.get("a") == {"v": 1}
            assert s.get("c") == {"v": 3}

    def test_rebuild_after_external_truncation(self, tmp_path):
        with ResultStore(tmp_path) as s:
            s.put("a", {"v": 1})
            s.put("b", {"v": 2})
        (tmp_path / "results.jsonl").write_text("")
        with ResultStore(tmp_path) as s:
            assert len(s) == 0
            assert s.get("a") is None

    def test_hit_ratio_counters(self, store):
        store.put("a", {"v": 1})
        store.get("a")
        store.get("a")
        store.get("missing")
        assert store.lookups == 3
        assert store.hits == 2
        assert store.hit_ratio == pytest.approx(2 / 3)


class TestJournal:
    def test_append_and_replay(self, tmp_path):
        with Journal(tmp_path) as j:
            j.append("start", run=1, cells=4)
            j.append("attempt", index=0, hash="h0", attempt=1)
            j.append("done", index=0, hash="h0", attempt=1)
        events = Journal(tmp_path).events()
        assert [e["event"] for e in events] == ["start", "attempt", "done"]
        assert all("ts" in e for e in events)

    def test_run_count(self, tmp_path):
        j = Journal(tmp_path)
        assert j.run_count() == 0
        j.append("start", run=1)
        j.append("finish", run=1)
        j.append("start", run=2)
        assert j.run_count() == 2
        j.close()

    def test_attempts_and_errors_by_hash(self, tmp_path):
        with Journal(tmp_path) as j:
            j.append("attempt", index=0, hash="h0", attempt=1)
            j.append("failed", index=0, hash="h0", attempt=1, error="boom")
            j.append("attempt", index=0, hash="h0", attempt=2)
            j.append("failed", index=0, hash="h0", attempt=2, error="again")
        j = Journal(tmp_path)
        assert j.attempts_by_hash() == {"h0": 2}
        assert j.last_error_by_hash() == {"h0": "again"}

    def test_torn_tail_skipped(self, tmp_path):
        with Journal(tmp_path) as j:
            j.append("start", run=1)
        with open(tmp_path / "journal.jsonl", "a") as f:
            f.write('{"event": "att')
        assert [e["event"] for e in Journal(tmp_path).replay()] == ["start"]

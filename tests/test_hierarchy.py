"""Two-level hierarchy simulator tests."""

import numpy as np
import pytest

from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.hierarchy import TwoLevelSimulator, traffic_cost
from repro.policies import IBLP, BlockLRU, ItemLRU
from repro.workloads import dram_cache_workload, sequential_scan


@pytest.fixture
def mapping():
    return FixedBlockMapping(universe=128, block_size=8)


def test_counters_consistent(mapping):
    trace = Trace(
        np.random.default_rng(0).integers(0, 128, 2000, dtype=np.int64),
        mapping,
    )
    stats = TwoLevelSimulator(ItemLRU(16, mapping), open_rows=2).run(trace)
    assert stats.accesses == 2000
    assert stats.l1_hits + stats.l1_misses == 2000
    assert stats.row_activations + stats.row_buffer_hits == stats.l1_misses
    assert stats.items_transferred >= stats.l1_misses


def test_scan_one_activation_per_block(mapping):
    trace = sequential_scan(128, block_size=8)
    # Item cache misses every item, but consecutive misses stay in the
    # same open row: one activation per block, seven buffer hits.
    stats = TwoLevelSimulator(ItemLRU(16, mapping), open_rows=1).run(trace)
    assert stats.row_activations == 16
    assert stats.row_buffer_hits == 128 - 16

    # A block cache turns the buffer reads into L1 hits instead.
    stats_blk = TwoLevelSimulator(BlockLRU(16, mapping), open_rows=1).run(trace)
    assert stats_blk.row_activations == 16
    assert stats_blk.row_buffer_hits == 0
    assert stats_blk.l1_hits == 128 - 16


def test_interleaved_misses_thrash_single_row(mapping):
    # Alternate between two blocks: with one open row every miss
    # activates; with two rows the second pass hits the buffers.
    items = np.array([0, 8, 1, 9, 2, 10, 3, 11], dtype=np.int64)
    trace = Trace(items, mapping)
    one = TwoLevelSimulator(ItemLRU(4, mapping), open_rows=1).run(trace)
    two = TwoLevelSimulator(ItemLRU(4, mapping), open_rows=2).run(trace)
    assert one.row_activations == 8
    assert two.row_activations == 2


def test_subset_loading_amortizes_activations():
    trace = dram_cache_workload(length=20_000, rows=128, lines_per_row=32, seed=1)
    k = 512
    item = TwoLevelSimulator(ItemLRU(k, trace.mapping), open_rows=4).run(trace)
    iblp = TwoLevelSimulator(IBLP(k, trace.mapping), open_rows=4).run(trace)
    # IBLP pulls far more items per activation and suffers far fewer
    # L1 misses.  (On bursty row traffic the open-row buffers already
    # coalesce the item cache's misses, so raw activation counts are
    # similar — the buffer is exactly why the GC model charges subset
    # loads nothing.)
    assert iblp.mean_items_per_activation > 3 * item.mean_items_per_activation
    assert iblp.l1_misses < item.l1_misses * 1.1


def test_block_policies_cut_activations_on_interleaved_streams():
    from repro.workloads import interleaved_streams

    trace = interleaved_streams(
        16_000, streams=8, blocks_per_stream=32, block_size=8
    )
    k = 256
    item = TwoLevelSimulator(ItemLRU(k, trace.mapping), open_rows=1).run(trace)
    iblp = TwoLevelSimulator(IBLP(k, trace.mapping), open_rows=1).run(trace)
    # Interleaving defeats the single open row, so the item cache
    # activates on essentially every access; IBLP activates once per
    # block and serves the rest from its block layer.
    assert item.row_activations > 4 * iblp.row_activations


def test_traffic_cost_tradeoff(mapping):
    trace = sequential_scan(128, block_size=8)
    stats = TwoLevelSimulator(BlockLRU(16, mapping), open_rows=1).run(trace)
    cheap_transfer = traffic_cost(stats, transfer_cost=0.0)
    pricey_transfer = traffic_cost(stats, transfer_cost=10.0)
    assert pricey_transfer > cheap_transfer
    with pytest.raises(ConfigurationError):
        traffic_cost(stats, activation_cost=-1)


def test_offline_policy_supported(mapping):
    from repro.policies import BeladyItem

    trace = Trace(np.array([0, 1, 0, 9, 0]), mapping)
    stats = TwoLevelSimulator(BeladyItem(2, mapping)).run(trace)
    assert stats.accesses == 5


def test_rejects_bad_open_rows(mapping):
    with pytest.raises(ConfigurationError):
        TwoLevelSimulator(ItemLRU(4, mapping), open_rows=0)


def test_as_row_flattens(mapping):
    trace = Trace(np.array([0, 1]), mapping)
    stats = TwoLevelSimulator(ItemLRU(4, mapping)).run(trace)
    row = stats.as_row()
    assert row["policy"] == "item-lru"
    assert row["accesses"] == 2

"""LocalityAdversary (Theorem 8) tests."""

import pytest

from repro.adversary import LocalityAdversary
from repro.errors import ConfigurationError
from repro.locality.functions import PolynomialLocality
from repro.locality.profile import profile_trace
from repro.policies import IBLP, BlockLRU, ItemLRU, MarkingLRU

K, B = 32, 4


def _family(gamma=1.0, p=2.0):
    return PolynomialLocality(p=p, gamma=gamma)


def _attack(policy_factory, gamma=1.0, phases=3):
    fam = _family(gamma=gamma)
    adv = LocalityAdversary(K, B, f_inverse=fam.f_inverse, g=fam.g)
    mapping = adv.make_mapping(phases)
    return adv.run(policy_factory(mapping), cycles=phases)


@pytest.mark.parametrize(
    "factory",
    [
        lambda m: ItemLRU(K, m),
        lambda m: BlockLRU(K, m),
        lambda m: IBLP(K, m),
        lambda m: MarkingLRU(K, m),
    ],
)
def test_fault_rate_at_least_theorem8(factory):
    # Theorem 8's numerator g(L) ~ f(L) = k + 1 while the phase has
    # k - 1 repetitions, so the realizable rate trails the printed
    # bound by (k-1)/(k+1) — the brief announcement's usual O(1) slop.
    run = _attack(factory)
    slack = (K - 1) / (K + 1)
    assert run.notes["fault_rate"] >= run.notes["theorem8_bound"] * slack * 0.99


def test_spatial_budget_respected():
    """Generated trace must not exceed the g() it was built from."""
    fam = _family(gamma=2.0)
    run = _attack(lambda m: ItemLRU(K, m), gamma=2.0)
    profile = profile_trace(run.trace)
    for n, g_val in zip(profile.windows, profile.g_values):
        # Allow the documented relaxation of one extra block.
        assert g_val <= fam.g(float(n)) + 1


def test_f_constraint_respected():
    fam = _family()
    run = _attack(lambda m: ItemLRU(K, m))
    profile = profile_trace(run.trace)
    for n, f_val in zip(profile.windows, profile.f_values):
        assert f_val <= fam.f(float(n)) + 1


def test_phase_length_matches_theorem():
    fam = _family()
    adv = LocalityAdversary(K, B, f_inverse=fam.f_inverse, g=fam.g)
    assert adv.phase_length == int(fam.f_inverse(K + 1)) - 2


def test_rejects_too_little_locality():
    # f grows so fast that f_inverse(k+1) - 2 < k - 1 repetitions.
    with pytest.raises(ConfigurationError):
        LocalityAdversary(K, B, f_inverse=lambda y: y - 10, g=lambda n: n)


def test_capacity_mismatch_rejected():
    fam = _family()
    adv = LocalityAdversary(K, B, f_inverse=fam.f_inverse, g=fam.g)
    mapping = adv.make_mapping(2)
    with pytest.raises(ConfigurationError):
        adv.run(ItemLRU(K + 1, mapping), cycles=1)


def test_spatial_locality_reduces_forced_faults():
    """With g = f/B the adversary has far fewer block moves to spend."""
    lru_no_spatial = _attack(lambda m: ItemLRU(K, m), gamma=1.0)
    lru_spatial = _attack(lambda m: BlockLRU(K, m), gamma=float(B))
    assert (
        lru_spatial.notes["theorem8_bound"]
        < lru_no_spatial.notes["theorem8_bound"]
    )

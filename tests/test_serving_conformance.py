"""Differential conformance: serving adds time, never changes decisions.

With the default FIFO queue and no drop knobs, requests start service
in arrival order — trace order — so the serving layer must produce the
*bit-identical* classified access stream (position, item,
miss/temporal/spatial) and the bit-identical embedded ``SimResult``
that offline ``simulate()`` produces for the same policy and trace.
This holds for referee-only policies and for policies the fast replay
kernels cover (the kernels are conformance-proven against the referee,
so serving must agree with ``simulate(fast=True)`` too).

The non-conformant knobs are exercised the other way around: drops
must *skip* cache accesses entirely (never a half-counted request),
and the SJF queue may reorder but must still serve every request
exactly once.
"""

import pytest

from repro.campaign.runner import result_fields
from repro.core.engine import simulate
from repro.policies import make_policy
from repro.serving import ArrivalSpec, ServiceModel, ServingConfig, serve
from repro.workloads import hot_and_stream, markov_spatial

CAPACITY = 64

#: (policy, has fast kernel) — mix of kernel-backed and referee-only.
POLICIES = [
    ("item-lru", True),
    ("iblp", True),
    ("block-fifo", True),
    ("gcm", False),
]


def traces():
    return [
        markov_spatial(length=4000, universe=512, block_size=8, stay=0.85, seed=3),
        hot_and_stream(
            length=4000, hot_items=64, stream_blocks=64, block_size=8, seed=4
        ),
    ]


def default_config():
    return ServingConfig(
        arrival=ArrivalSpec(process="poisson", rate=0.01, seed=2),
        service=ServiceModel(t_hit=1.0, t_miss=50.0, t_item=1.0),
        concurrency=3,
    )


@pytest.mark.parametrize("policy_name,has_fast", POLICIES)
def test_taxonomy_bit_identical_to_simulate(policy_name, has_fast):
    for trace in traces():
        offline_stream = []
        offline = simulate(
            make_policy(policy_name, CAPACITY, trace.mapping),
            trace,
            on_access=lambda p, i, k: offline_stream.append((p, i, k)),
        )
        serving_stream = []
        served = serve(
            make_policy(policy_name, CAPACITY, trace.mapping),
            trace,
            default_config(),
            on_access=lambda p, i, k: serving_stream.append((p, i, k)),
        )
        # Same per-access stream, same aggregate result — bit for bit.
        assert serving_stream == offline_stream
        assert result_fields(served.sim) == result_fields(offline)
        if has_fast:
            fast = simulate(
                make_policy(policy_name, CAPACITY, trace.mapping), trace, fast=True
            )
            assert result_fields(served.sim) == result_fields(fast)


def test_conformance_holds_under_bursty_and_closed_arrivals():
    """Arrival timing shifts queueing, never decisions: any drop-free
    FIFO config yields the same access stream."""
    trace = traces()[0]
    reference = simulate(make_policy("iblp", CAPACITY, trace.mapping), trace)
    for arrival in (
        ArrivalSpec(process="mmpp", rate=0.02, seed=7),
        ArrivalSpec(process="constant", rate=0.05),
        ArrivalSpec(process="closed", clients=6, think=3.0, seed=8),
    ):
        served = serve(
            make_policy("iblp", CAPACITY, trace.mapping),
            trace,
            ServingConfig(arrival=arrival, concurrency=2),
        )
        assert result_fields(served.sim) == result_fields(reference)


def test_drops_skip_cache_entirely():
    trace = traces()[0]
    config = ServingConfig(
        arrival=ArrivalSpec(process="mmpp", rate=0.05, seed=5),
        service=ServiceModel(t_hit=1.0, t_miss=80.0),
        concurrency=1,
        queue_limit=4,
        timeout=100.0,
    )
    served = serve(make_policy("item-lru", CAPACITY, trace.mapping), trace, config)
    assert served.dropped > 0  # the config is tight enough to shed load
    assert served.sim.accesses == served.arrivals - served.dropped
    assert served.completions == served.sim.accesses


def test_sjf_serves_every_request_once():
    trace = traces()[0]
    positions = []
    served = serve(
        make_policy("item-lru", CAPACITY, trace.mapping),
        trace,
        ServingConfig(
            arrival=ArrivalSpec(process="poisson", rate=0.05, seed=6),
            service=ServiceModel(t_hit=1.0, t_miss=80.0),
            concurrency=1,
            queue="sjf",
        ),
        on_access=lambda p, i, k: positions.append(p),
    )
    # SJF may reorder (that is its point) but must not duplicate/skip.
    assert sorted(positions) == list(range(len(trace.items)))
    assert served.completions == len(trace.items)

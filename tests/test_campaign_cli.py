"""Campaign CLI: run/resume/status/export end-to-end, including the
orchestrator-crash acceptance test (kill -9 mid-campaign, resume,
rows bit-identical to an uninterrupted serial sweep)."""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.sweep import simulate_cell, sweep
from repro.campaign import CampaignSpec, TraceSpec
from repro.campaign.cli import collect_rows
from repro.cli import main

RUN_ARGS = [
    "--policy",
    "item-lru,iblp",
    "--capacity",
    "16,64",
    "--workload",
    "uniform",
    "--length",
    "800",
    "--universe",
    "64",
    "--block-size",
    "4",
    "--fast",
]


def run_cli(capsys, *args):
    code = main(["campaign", *args])
    assert code == 0
    return capsys.readouterr().out


class TestRunStatusExport:
    def test_run_then_status_then_export(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        out = run_cli(capsys, "run", directory, *RUN_ARGS)
        assert "4/4 cells done" in out
        assert "4 computed" in out

        out = run_cli(capsys, "status", directory)
        assert "4/4 cells done" in out
        assert out.count("done") >= 4
        assert "pending" not in out

        out = run_cli(capsys, "export", directory)
        assert "miss_ratio" in out  # aligned table by default

        csv_path = tmp_path / "rows.csv"
        out = run_cli(capsys, "export", directory, "--out", str(csv_path))
        assert "wrote 4/4 rows" in out
        lines = csv_path.read_text().splitlines()
        assert len(lines) == 5  # header + 4 rows

        out = run_cli(capsys, "export", directory, "--format", "jsonl")
        rows = [json.loads(line) for line in out.splitlines()]
        assert len(rows) == 4
        assert {r["capacity"] for r in rows} == {16, 64}

    def test_rerun_is_fully_memoized(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        run_cli(capsys, "run", directory, *RUN_ARGS)
        out = run_cli(capsys, "run", directory, *RUN_ARGS)
        assert "4 memoized, 0 computed" in out

    def test_multi_seed_grid(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        out = run_cli(
            capsys,
            "run",
            directory,
            "--policy",
            "item-lru",
            "--capacity",
            "16",
            "--workload",
            "uniform",
            "--length",
            "400",
            "--universe",
            "32",
            "--block-size",
            "4",
            "--seed",
            "0,1,2",
            "--fast",
        )
        assert "3/3 cells done" in out
        rows = collect_rows(directory)
        assert [r["trace"] for r in rows] == [
            "uniform-s0",
            "uniform-s1",
            "uniform-s2",
        ]

    def test_trace_file_campaign(self, tmp_path, capsys):
        trace_file = tmp_path / "toy.trace"
        trace_file.write_text("\n".join(str(i % 48) for i in range(600)))
        directory = str(tmp_path / "camp")
        out = run_cli(
            capsys,
            "run",
            directory,
            "--policy",
            "item-lru,block-lru",
            "--capacity",
            "8",
            "--trace-file",
            str(trace_file),
            "--block-size",
            "4",
            "--fast",
        )
        assert "2/2 cells done" in out
        rows = collect_rows(directory)
        assert all(r["trace"] == "toy" for r in rows)

    def test_status_before_any_run(self, tmp_path, capsys):
        spec = CampaignSpec.from_grid(
            name="idle",
            policies=["item-lru"],
            capacities=[8],
            traces={
                "u": TraceSpec(
                    kind="workload",
                    name="uniform",
                    params={"length": 100, "universe": 32, "block_size": 4},
                )
            },
        )
        spec.save(tmp_path)
        out = run_cli(capsys, "status", str(tmp_path))
        assert "0/1 cells done" in out
        assert "pending" in out
        out = run_cli(capsys, "export", str(tmp_path))
        assert "no completed cells" in out


@pytest.mark.skipif(
    not hasattr(signal, "SIGKILL"), reason="needs SIGKILL semantics"
)
class TestOrchestratorCrash:
    """Acceptance: kill -9 the orchestrator mid-campaign; `campaign
    resume` completes it, and the merged result rows are bit-identical
    row-for-row to an uninterrupted serial sweep."""

    def _spec(self):
        return CampaignSpec.from_grid(
            name="crashy",
            policies=["item-lru", "iblp"],
            capacities=[16, 64],
            traces={
                "u": TraceSpec(
                    kind="workload",
                    name="uniform",
                    params={
                        "length": 1000,
                        "universe": 64,
                        "block_size": 4,
                        "seed": 5,
                    },
                )
            },
            fast=True,
        )

    def test_kill9_then_resume_bit_identical(self, tmp_path, capsys):
        directory = tmp_path / "camp"
        spec = self._spec()
        spec.save(directory)

        # Child process drives the campaign but SIGKILLs itself while
        # executing the third cell — no cleanup, no atexit, exactly the
        # "orchestrator died" failure mode.  The first two results must
        # already be durable in the store.
        script = textwrap.dedent(
            """
            import os, signal
            import repro.campaign.runner as rm
            from repro.campaign import CampaignRunner

            real = rm.execute_cell
            seen = []

            def dying(cell, trace):
                seen.append(cell)
                if len(seen) == 3:
                    os.kill(os.getpid(), signal.SIGKILL)
                return real(cell, trace)

            rm.execute_cell = dying
            with CampaignRunner({dir!r}) as runner:
                runner.run()
            """
        ).format(dir=str(directory))
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()

        # Exactly the two cells completed before the crash survived.
        assert len(collect_rows(directory)) == 2

        out = run_cli(capsys, "resume", str(directory))
        assert "4/4 cells done" in out
        assert "2 memoized, 2 computed" in out

        merged = collect_rows(directory)
        trace = spec.traces["u"].materialize()
        expected = sweep(
            simulate_cell,
            [
                dict(
                    policy=c.policy,
                    capacity=c.capacity,
                    trace=trace,
                    fast=c.fast,
                )
                for c in spec.cells
            ],
        )
        for row in expected:
            row["trace"] = "u"  # campaign echoes the trace key
        assert merged == expected

    def test_resume_of_untouched_campaign_runs_everything(
        self, tmp_path, capsys
    ):
        directory = tmp_path / "camp"
        self._spec().save(directory)
        out = run_cli(capsys, "resume", str(directory))
        assert "4/4 cells done" in out
        assert "0 memoized, 4 computed" in out


class TestQuarantineStatus:
    """`campaign status` must surface stuck cells and exit nonzero."""

    BAD_ARGS = [
        "--policy",
        "item-lru,no-such-policy",
        "--capacity",
        "16",
        "--workload",
        "uniform",
        "--length",
        "400",
        "--universe",
        "32",
        "--block-size",
        "4",
        "--max-attempts",
        "2",
        "--backoff",
        "0.01",
    ]

    def test_status_exits_nonzero_with_quarantined_cells(
        self, tmp_path, capsys
    ):
        directory = str(tmp_path / "camp")
        # The run itself reports and exits 0 (partial results are
        # durable and resumable); *status* is the CI-facing gate.
        assert main(["campaign", "run", directory, *self.BAD_ARGS]) == 0
        out = capsys.readouterr().out
        assert "1 quarantined" in out

        assert main(["campaign", "status", directory]) == 1
        out = capsys.readouterr().out
        assert "WARNING: 1 cell(s) quarantined" in out
        assert "quarantined" in out
        assert "no-such-policy" in out  # the error excerpt names the cause
        # Retry counts are visible: max-attempts=2 means 2 attempts.
        row = next(l for l in out.splitlines() if "quarantined" in l and "2" in l)
        assert "unknown policy" in row

    def test_status_recovers_after_successful_resume(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        assert main(["campaign", "run", directory, *RUN_ARGS]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", directory]) == 0
        out = capsys.readouterr().out
        assert "quarantined" not in out


class TestObservabilityFlags:
    def test_run_with_spans_and_metrics(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        spans_path = tmp_path / "spans.jsonl"
        prom_path = tmp_path / "metrics.prom"
        out = run_cli(
            capsys,
            "run",
            directory,
            *RUN_ARGS,
            "--trace-spans",
            str(spans_path),
            "--metrics-out",
            str(prom_path),
        )
        assert "4/4 cells done" in out

        # The span tree: campaign > execute > cell > replay children.
        from repro.obs.trace_export import load_spans

        spans = load_spans(spans_path)
        by_name = {}
        for sp in spans:
            by_name.setdefault(sp.name, []).append(sp)
        assert len(by_name["campaign"]) == 1
        assert len(by_name["cell"]) == 4
        assert len(by_name["store.put"]) == 4
        by_id = {sp.span_id: sp for sp in spans}
        for cell in by_name["cell"]:
            assert by_id[cell.parent_id].name == "campaign.execute"
        for put in by_name["store.put"]:
            assert by_id[put.parent_id].name == "cell"
        assert len({sp.trace_id for sp in spans}) == 1

        # Chrome trace export round-trips through the CLI.
        trace_out = tmp_path / "trace.json"
        assert (
            main(
                [
                    "obs",
                    "trace-export",
                    str(spans_path),
                    "--out",
                    str(trace_out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        doc = json.loads(trace_out.read_text())
        assert {e["name"] for e in doc["traceEvents"]} >= {"campaign", "cell"}

        # The heartbeat left a final watch state and Prometheus file.
        from repro.obs.watch import read_watch_state

        state = read_watch_state(Path(directory) / "watch.json")
        assert state["finished"] is True
        assert state["done"] == 4
        prom = prom_path.read_text()
        assert "# TYPE repro_campaign_cells gauge" in prom
        assert "repro_campaign_cells_done 4" in prom

    def test_parallel_run_with_spans(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        spans_path = tmp_path / "spans.jsonl"
        out = run_cli(
            capsys,
            "run",
            directory,
            *RUN_ARGS,
            "--parallel",
            "--workers",
            "2",
            "--trace-spans",
            str(spans_path),
        )
        assert "4/4 cells done" in out
        from repro.obs.trace_export import load_spans

        spans = load_spans(spans_path)
        cells = [sp for sp in spans if sp.name == "cell"]
        orchestrator_pid = next(
            sp.pid for sp in spans if sp.name == "campaign"
        )
        assert len(cells) == 4
        # Worker cell spans were recorded in other processes yet still
        # parent into the orchestrator's tree.
        assert all(sp.pid != orchestrator_pid for sp in cells)
        by_id = {sp.span_id: sp for sp in spans}
        assert {by_id[sp.parent_id].name for sp in cells} == {
            "campaign.execute"
        }

    def test_memoized_rerun_with_spans(self, tmp_path, capsys):
        directory = str(tmp_path / "camp")
        run_cli(capsys, "run", directory, *RUN_ARGS)
        spans_path = tmp_path / "rerun_spans.jsonl"
        out = run_cli(
            capsys,
            "run",
            directory,
            *RUN_ARGS,
            "--trace-spans",
            str(spans_path),
        )
        assert "4 memoized" in out
        from repro.obs.trace_export import load_spans

        names = {sp.name for sp in load_spans(spans_path)}
        assert names == {"campaign", "campaign.plan", "campaign.execute"}

"""AdaptiveIBLP tests: boundary adaptation, safety, and wins."""

import numpy as np
import pytest

from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies import IBLP, AdaptiveIBLP
from repro.workloads import (
    hot_and_stream,
    interleaved_streams,
    phase_mixture,
    zipf_items,
)


@pytest.fixture
def mapping():
    return FixedBlockMapping(universe=512, block_size=8)


def test_validation(mapping):
    with pytest.raises(ConfigurationError):
        AdaptiveIBLP(16, mapping, initial_item_fraction=1.5)
    with pytest.raises(ConfigurationError):
        AdaptiveIBLP(16, mapping, ghost_factor=0)


def test_referee_validates_extensively(mapping):
    trace = Trace(
        np.random.default_rng(0).integers(0, 512, 4000, dtype=np.int64),
        mapping,
    )
    res = simulate(AdaptiveIBLP(64, mapping), trace, cross_check_every=97)
    assert res.accesses == 4000


def test_boundary_grows_on_temporal_pressure(mapping):
    # Cyclic working set slightly above the initial item layer: evicted
    # items keep returning via the ghost, pushing the boundary up.
    k = 64
    w = 48  # > initial i = 32, <= k
    items = np.array([(i % w) * 8 for i in range(4000)], dtype=np.int64)
    trace = Trace(items, mapping)
    policy = AdaptiveIBLP(k, mapping)
    simulate(policy, trace)
    assert policy.item_layer_target > k // 2


def test_boundary_shrinks_on_spatial_pressure():
    trace = interleaved_streams(8000, streams=12, blocks_per_stream=16, block_size=8)
    k = 128
    policy = AdaptiveIBLP(k, trace.mapping)
    simulate(policy, trace)
    assert policy.item_layer_target < k // 2


def test_adaptive_tracks_better_fixed_split_each_regime():
    k, B = 128, 8
    temporal = hot_and_stream(
        30_000,
        hot_items=int(0.8 * k),
        stream_blocks=4 * k // B,
        block_size=B,
        hot_fraction=0.95,
        seed=5,
    )
    spatial = interleaved_streams(
        30_000, streams=2 * ((k // 4) // B) + 4, blocks_per_stream=64, block_size=B
    )
    for trace in (temporal, spatial):
        adaptive = simulate(AdaptiveIBLP(k, trace.mapping), trace).misses
        fixed_item = simulate(
            IBLP(k, trace.mapping, item_layer_size=int(0.9 * k)), trace
        ).misses
        fixed_block = simulate(
            IBLP(k, trace.mapping, item_layer_size=int(0.25 * k)), trace
        ).misses
        # Adaptive must stay within 1.6x of the better fixed split and
        # clearly beat the worse one in the regime where it collapses.
        assert adaptive <= 1.6 * min(fixed_item, fixed_block)
        assert adaptive < 0.8 * max(fixed_item, fixed_block)


def test_adaptive_beats_bad_fixed_split_on_phase_change():
    """After a regime shift the fixed split stays wrong; adaptive moves."""
    k, B = 128, 8
    temporal = hot_and_stream(
        15_000,
        hot_items=int(0.8 * k),
        stream_blocks=4 * k // B,
        block_size=B,
        hot_fraction=0.95,
        seed=7,
    )
    spatial = interleaved_streams(
        15_000, streams=12, blocks_per_stream=16, block_size=B
    )
    # Embed both phases into one universe by concatenation over the
    # larger mapping (pad the smaller trace's universe).
    big = max(temporal.universe, spatial.universe)
    mapping = FixedBlockMapping(universe=big, block_size=B)
    items = np.concatenate([temporal.items, spatial.items])
    trace = Trace(items, mapping)
    adaptive = simulate(AdaptiveIBLP(k, mapping), trace).misses
    item_heavy = simulate(
        IBLP(k, mapping, item_layer_size=int(0.9 * k)), trace
    ).misses
    assert adaptive < item_heavy


def test_zero_extremes_stay_functional(mapping):
    trace = Trace(np.arange(512), mapping)
    for frac in (0.0, 1.0):
        res = simulate(
            AdaptiveIBLP(32, mapping, initial_item_fraction=frac),
            trace,
            cross_check_every=64,
        )
        assert res.accesses == 512


def test_reset_restores_configuration(mapping):
    p = AdaptiveIBLP(32, mapping, initial_item_fraction=0.25)
    p.access(0)
    p.reset()
    assert p.item_layer_target == 8
    assert not p.contains(0)


def test_competitive_on_plain_zipf(mapping):
    trace = zipf_items(20_000, 512, alpha=1.0, block_size=8, seed=9)
    k = 64
    adaptive = simulate(AdaptiveIBLP(k, mapping), trace).misses
    fixed = simulate(IBLP(k, mapping), trace).misses
    assert adaptive <= 1.3 * fixed

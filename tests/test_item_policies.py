"""Item-granularity policy tests (LRU, FIFO, MRU, CLOCK, LFU, Random)."""

import numpy as np
import pytest

from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies import (
    ItemClock,
    ItemFIFO,
    ItemLFU,
    ItemLRU,
    ItemMRU,
    ItemRandom,
)

ALL_ITEM_POLICIES = [ItemLRU, ItemFIFO, ItemMRU, ItemClock, ItemLFU, ItemRandom]


@pytest.fixture
def mapping():
    return FixedBlockMapping(universe=64, block_size=4)


@pytest.mark.parametrize("cls", ALL_ITEM_POLICIES)
def test_loads_only_requested_item(cls, mapping):
    policy = cls(8, mapping)
    out = policy.access(0)
    assert not out.hit
    assert out.loaded == frozenset([0])
    assert policy.contains(0)
    assert not policy.contains(1)  # same block, not loaded


@pytest.mark.parametrize("cls", ALL_ITEM_POLICIES)
def test_never_exceeds_capacity(cls, mapping):
    trace = Trace(
        np.random.default_rng(1).integers(0, 64, 500, dtype=np.int64), mapping
    )
    res = simulate(cls(5, mapping), trace, cross_check_every=50)
    assert res.accesses == 500


@pytest.mark.parametrize("cls", ALL_ITEM_POLICIES)
def test_no_spatial_hits_ever(cls, mapping):
    """Item caches never side-load, so spatial hits are impossible."""
    trace = Trace(np.arange(64), mapping)
    res = simulate(cls(16, mapping), trace)
    assert res.spatial_hits == 0
    assert res.misses == 64


@pytest.mark.parametrize("cls", ALL_ITEM_POLICIES)
def test_rejects_nonpositive_capacity(cls, mapping):
    with pytest.raises(ConfigurationError):
        cls(0, mapping)


def test_lru_eviction_order(mapping):
    p = ItemLRU(2, mapping)
    p.access(0)
    p.access(1)
    p.access(0)  # 1 is now LRU
    out = p.access(2)
    assert out.evicted == frozenset([1])


def test_fifo_ignores_hits(mapping):
    p = ItemFIFO(2, mapping)
    p.access(0)
    p.access(1)
    p.access(0)  # hit: must NOT refresh 0's position
    out = p.access(2)
    assert out.evicted == frozenset([0])


def test_mru_evicts_most_recent(mapping):
    p = ItemMRU(3, mapping)
    for x in (0, 1, 2):
        p.access(x)
    out = p.access(3)
    assert out.evicted == frozenset([2])


def test_lru_cyclic_scan_thrashes(mapping):
    """Classic: LRU gets zero hits on a cycle one larger than cache."""
    k = 8
    trace = Trace(
        np.array([i % (k + 1) for i in range(10 * (k + 1))]), mapping
    )
    res = simulate(ItemLRU(k, mapping), trace)
    assert res.hits == 0


def test_mru_cyclic_scan_wins(mapping):
    """MRU retains most of a cycling working set."""
    k = 8
    trace = Trace(
        np.array([i % (k + 1) for i in range(10 * (k + 1))]), mapping
    )
    mru = simulate(ItemMRU(k, mapping), trace)
    lru = simulate(ItemLRU(k, mapping), trace)
    assert mru.misses < lru.misses


def test_lfu_prefers_frequent_items(mapping):
    p = ItemLFU(2, mapping)
    p.access(0)
    p.access(0)
    p.access(1)
    out = p.access(2)  # 1 has frequency 1, 0 has 2
    assert out.evicted == frozenset([1])


def test_lfu_tie_breaks_by_recency(mapping):
    p = ItemLFU(2, mapping)
    p.access(0)
    p.access(1)  # both frequency 1; 0 older
    out = p.access(2)
    assert out.evicted == frozenset([0])


def test_clock_approximates_lru_on_zipf(mapping):
    """CLOCK should land in LRU's neighbourhood on skewed traffic."""
    rng = np.random.default_rng(3)
    weights = (np.arange(1, 65, dtype=float)) ** -1.2
    weights /= weights.sum()
    items = rng.choice(64, size=4000, p=weights)
    trace = Trace(items.astype(np.int64), mapping)
    lru = simulate(ItemLRU(16, mapping), trace).misses
    clock = simulate(ItemClock(16, mapping), trace).misses
    assert clock <= lru * 1.3


def test_random_policy_is_seed_deterministic(mapping):
    trace = Trace(
        np.random.default_rng(7).integers(0, 64, 800, dtype=np.int64), mapping
    )
    a = simulate(ItemRandom(8, mapping, seed=5), trace).misses
    b = simulate(ItemRandom(8, mapping, seed=5), trace).misses
    c = simulate(ItemRandom(8, mapping, seed=6), trace).misses
    assert a == b
    # Different seeds will usually differ; only assert both are sane.
    assert 0 < c <= 800


def test_reset_restores_empty_state(mapping):
    p = ItemLRU(4, mapping)
    p.access(0)
    p.reset()
    assert not p.contains(0)
    assert p.resident_items() == frozenset()


def test_random_reset_restores_seed(mapping):
    p = ItemRandom(4, mapping, seed=9)
    trace = Trace(
        np.random.default_rng(2).integers(0, 64, 300, dtype=np.int64), mapping
    )
    first = simulate(p, trace).misses
    p.reset()
    second = simulate(p, trace).misses
    assert first == second

"""Telemetry subsystem tests: registry, windows, sinks, recorder.

The two load-bearing guarantees:

* **Exactness** — window rows partition the trace: per-window misses
  and accesses sum to the ``SimResult`` totals, including a trailing
  partial window.
* **Non-interference** — attaching a recorder (even with full event
  tracing) produces a ``SimResult`` identical to an uninstrumented
  run, for deterministic and seeded-randomized policies alike.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.sweep import grid, sweep
from repro.analysis.tables import format_histogram
from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError, TraceFormatError
from repro.policies import GCM, IBLP, BlockLRU, ItemLRU
from repro.telemetry import (
    CSVSink,
    EventSampler,
    Histogram,
    JSONLSink,
    MetricsRegistry,
    Recorder,
    RingBufferSink,
    WindowedSeries,
    read_jsonl,
)
from repro.telemetry.report import load_telemetry, render_report
from repro.types import HitKind


@pytest.fixture
def mapping():
    return FixedBlockMapping(universe=1024, block_size=8)


@pytest.fixture
def trace(mapping):
    gen = np.random.default_rng(42)
    return Trace(gen.integers(0, 1024, size=3000, dtype=np.int64), mapping)


class TestMetricsRegistry:
    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("misses") is reg.counter("misses")
        assert reg.gauge("occ") is reg.gauge("occ")
        assert reg.histogram("age") is reg.histogram("age")

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")
        with pytest.raises(ConfigurationError):
            reg.histogram("x")

    def test_histogram_edge_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("age", edges=(1, 2, 4))
        with pytest.raises(ConfigurationError):
            reg.histogram("age", edges=(1, 2, 8))

    def test_counter_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_as_dict_and_flat(self):
        reg = MetricsRegistry()
        reg.counter("n").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", edges=(1, 2)).observe(0)
        flat = reg.flat(prefix="t_")
        assert flat["t_n"] == 3
        assert flat["t_g"] == 1.5
        assert flat["t_h_total"] == 1
        as_dict = reg.as_dict()
        assert as_dict["h"]["counts"] == [1, 0, 0]
        assert "n" in reg and len(reg) == 3
        assert reg.names() == ["n", "g", "h"]


class TestHistogram:
    def test_bucketing_upper_inclusive(self):
        h = Histogram("age", edges=(1, 4, 16))
        for v in (0, 1, 2, 4, 5, 100):
            h.observe(v)
        assert h.counts == [2, 2, 1, 1]
        assert h.total == 6
        assert h.mean == pytest.approx(112 / 6)

    def test_bad_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("h", edges=())
        with pytest.raises(ConfigurationError):
            Histogram("h", edges=(4, 1))
        with pytest.raises(ConfigurationError):
            Histogram("h", edges=(1, 1, 2))

    def test_merge(self):
        a = Histogram("a", edges=(1, 2))
        b = Histogram("b", edges=(1, 2))
        a.observe(0)
        b.observe(5, n=3)
        a.merge(b)
        assert a.counts == [1, 0, 3]
        assert a.total == 4
        with pytest.raises(ConfigurationError):
            a.merge(Histogram("c", edges=(1, 3)))

    def test_quantile(self):
        h = Histogram("h", edges=(1, 2, 4))
        for _ in range(99):
            h.observe(1)
        h.observe(4)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(1.0) == 4.0
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)

    def test_format_histogram_render(self):
        h = Histogram("h", edges=(1, 2))
        h.observe(0, n=4)
        h.observe(9)
        text = format_histogram(h.edges, h.counts, width=8)
        assert "[0, 1]" in text and "(2, inf)" in text
        assert text.count("#") == 8 + 2
        with pytest.raises(ValueError):
            format_histogram((1, 2), [1, 2])


class TestWindowedSeries:
    def _feed(self, series, kinds):
        for kind in kinds:
            loaded = 2 if kind is HitKind.MISS else 0
            series.observe(kind, loaded, 0, occupancy=1)

    def test_partial_final_window(self):
        series = WindowedSeries(window=4)
        self._feed(series, [HitKind.MISS] * 10)
        assert len(series.rows) == 2
        tail = series.finalize()
        assert tail is not None and tail.accesses == 2
        assert [r.accesses for r in series.rows] == [4, 4, 2]
        assert series.total_misses == 10
        assert series.total_accesses == 10
        assert series.rows[-1].start == 8 and series.rows[-1].end == 10

    def test_exact_multiple_has_no_partial(self):
        series = WindowedSeries(window=5)
        self._feed(series, [HitKind.TEMPORAL_HIT] * 10)
        assert series.finalize() is None
        assert [r.accesses for r in series.rows] == [5, 5]

    def test_empty_trace(self):
        series = WindowedSeries(window=5)
        assert series.finalize() is None
        assert series.rows == []
        assert series.total_accesses == 0

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WindowedSeries(window=0)

    def test_ratios_and_roundtrip(self):
        series = WindowedSeries(window=3, age_edges=(1, 4))
        series.observe(HitKind.MISS, 4, 0, occupancy=4)
        series.observe(HitKind.SPATIAL_HIT, 0, 0, occupancy=4)
        series.observe(HitKind.TEMPORAL_HIT, 0, 2, occupancy=2, eviction_ages=(0, 9))
        (row,) = series.rows
        assert row.miss_ratio == pytest.approx(1 / 3)
        assert row.spatial_fraction == pytest.approx(0.5)
        assert row.mean_load_set_size == pytest.approx(4.0)
        assert row.evict_age_counts == [1, 0, 1]
        rec = row.as_record()
        clone = type(row).from_record(json.loads(json.dumps(rec)))
        assert clone == row


class TestSampler:
    def test_extremes_do_not_draw(self):
        always = EventSampler(1.0, seed=1)
        never = EventSampler(0.0, seed=1)
        assert all(always.sample() for _ in range(100))
        assert not any(never.sample() for _ in range(100))

    def test_seeded_determinism(self):
        first = EventSampler(0.5, seed=9)
        second = EventSampler(0.5, seed=9)
        a = [first.sample() for _ in range(200)]
        b = [second.sample() for _ in range(200)]
        assert a == b
        assert 40 < sum(a) < 160

    def test_rate_validated(self):
        with pytest.raises(ConfigurationError):
            EventSampler(1.5)


class TestSinks:
    def test_ring_buffer_bounded(self):
        sink = RingBufferSink(maxlen=3)
        for i in range(5):
            sink.emit({"type": "access", "pos": i})
        assert len(sink) == 3
        assert [r["pos"] for r in sink.records] == [2, 3, 4]
        assert sink.of_type("window") == []

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JSONLSink(path) as sink:
            sink.emit({"type": "window", "index": 0, "misses": 3})
            sink.emit({"type": "summary", "misses": 3})
        records = read_jsonl(path)
        assert records == [
            {"type": "window", "index": 0, "misses": 3},
            {"type": "summary", "misses": 3},
        ]
        assert read_jsonl(path, kinds=("window",)) == records[:1]

    def test_jsonl_rejects_emit_after_close(self, tmp_path):
        sink = JSONLSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError):
            sink.emit({"type": "window"})

    def test_csv_sink_encodes_lists(self, tmp_path):
        path = tmp_path / "t.csv"
        sink = CSVSink(path)
        sink.emit({"type": "window", "counts": [1, 2]})
        sink.close()
        text = path.read_text()
        assert "window" in text and '"[1, 2]"' in text


class TestRecorder:
    def test_window_misses_sum_to_result(self, trace, mapping):
        recorder = Recorder(window=700)
        res = simulate(IBLP(128, mapping), trace, recorder=recorder)
        rows = recorder.window_rows
        assert sum(r.misses for r in rows) == res.misses
        assert sum(r.accesses for r in rows) == res.accesses == 3000
        assert sum(r.spatial_hits for r in rows) == res.spatial_hits
        assert sum(r.loaded_items for r in rows) == res.loaded_items
        assert [r.accesses for r in rows] == [700, 700, 700, 700, 200]
        assert all(0 <= r.occupancy <= 128 for r in rows)

    def test_telemetry_does_not_change_results(self, trace, mapping):
        """Determinism: telemetry-on and -off runs are identical, even
        for a randomized policy and full-rate event tracing."""
        for factory in (
            lambda: ItemLRU(64, mapping),
            lambda: GCM(64, mapping, seed=3),
        ):
            plain = simulate(factory(), trace)
            recorder = Recorder(
                window=100, sinks=[RingBufferSink()], sample_rate=1.0
            )
            traced = simulate(factory(), trace, recorder=recorder)
            assert traced == plain

    def test_full_rate_traces_every_access(self, trace, mapping):
        sink = RingBufferSink(maxlen=10_000)
        recorder = Recorder(sinks=[sink], sample_rate=1.0)
        res = simulate(BlockLRU(64, mapping), trace, recorder=recorder)
        events = sink.of_type("access")
        assert len(events) == res.accesses
        assert [e["pos"] for e in events[:3]] == [0, 1, 2]
        kinds = {e["kind"] for e in events}
        assert kinds <= {"miss", "temporal", "spatial"}
        assert sum(e["kind"] == "miss" for e in events) == res.misses

    def test_eviction_ages_tracked(self, mapping):
        # Scan twice the capacity in blocks: every eviction happens
        # exactly `capacity` accesses after the load.
        items = np.arange(256)
        trace = Trace(items, mapping)
        recorder = Recorder(window=64)
        simulate(BlockLRU(128, mapping), trace, recorder=recorder)
        assert recorder.age_hist.total > 0
        assert recorder.age_hist.mean == pytest.approx(128, abs=8)

    def test_registry_synced_on_finalize(self, trace, mapping):
        recorder = Recorder(window=500)
        res = simulate(ItemLRU(64, mapping), trace, recorder=recorder)
        reg = recorder.registry
        assert reg.counter("accesses").value == res.accesses
        assert reg.counter("misses").value == res.misses
        assert reg.counter("spatial_hits").value == res.spatial_hits

    def test_finalize_idempotent_and_summary(self, trace, mapping):
        recorder = Recorder(window=500)
        res = simulate(ItemLRU(64, mapping), trace, recorder=recorder)
        summary = recorder.summary()
        assert summary["misses"] == res.misses
        assert summary["miss_ratio"] == pytest.approx(res.miss_ratio)
        assert summary["spatial_fraction"] == pytest.approx(res.spatial_fraction)
        assert summary["windows"] == 6
        assert summary["phase_simulate_s"] > 0
        again = recorder.finalize()
        assert again == {"type": "summary"}

    def test_phase_timer_records_span(self):
        recorder = Recorder(sinks=[RingBufferSink()])
        with recorder.phase("setup"):
            pass
        assert recorder.phase_seconds["setup"] >= 0.0
        (event,) = recorder.ring().of_type("phase")
        assert event["name"] == "setup"


class TestJSONLPipeline:
    def test_simulate_to_report_roundtrip(self, trace, mapping, tmp_path):
        path = tmp_path / "tele.jsonl"
        recorder = Recorder(window=640, sinks=[JSONLSink(path)], sample_rate=0.25)
        res = simulate(IBLP(128, mapping), trace, recorder=recorder)

        log = load_telemetry(path)
        assert log.total_misses == res.misses
        assert log.total_accesses == res.accesses
        assert [r.as_record() for r in log.windows] == [
            r.as_record() for r in recorder.window_rows
        ]
        assert log.summary["result"]["misses"] == res.misses
        assert 0 < len(log.access_events) < res.accesses

        report = render_report(log)
        assert "windowed telemetry" in report
        assert "spatial_fraction" in report
        assert "miss_ratio vs window" in report
        no_plot = render_report(log, plot=False)
        assert "miss_ratio vs window" not in no_plot
        with pytest.raises(TraceFormatError):
            render_report(log, metric="nope")

    def test_unknown_record_type_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "mystery"}\n')
        with pytest.raises(TraceFormatError):
            load_telemetry(path)


class TestSweepIntegration:
    def test_timing_attached(self):
        rows = sweep(lambda a: {"double": 2 * a}, grid(a=[1, 2]), timing=True)
        assert all(row["cell_seconds"] >= 0.0 for row in rows)
        plain = sweep(lambda a: {"double": 2 * a}, grid(a=[1, 2]))
        assert all("cell_seconds" not in row for row in plain)

    def test_recorder_values_flattened(self, mapping):
        def cell(k):
            gen = np.random.default_rng(k)
            tr = Trace(gen.integers(0, 1024, size=500, dtype=np.int64), mapping)
            recorder = Recorder(window=100)
            res = simulate(ItemLRU(k, mapping), tr, recorder=recorder)
            return {"misses": res.misses, "telemetry": recorder}

        rows = sweep(cell, grid(k=[16, 64]), timing=True)
        for row in rows:
            assert "telemetry" not in row
            assert row["telemetry_misses"] == row["misses"]
            assert row["telemetry_windows"] == 5
            assert row["telemetry_phase_simulate_s"] > 0
            assert row["cell_seconds"] > 0

"""Differential conformance: fast replay kernels vs the referee engine.

The load-bearing guarantee of :mod:`repro.core.fast` is that every
kernel is *bit-identical* to the validating referee — same
:class:`SimResult` down to metadata, same per-access outcome stream.
These tests replay randomized and adversarial traces through both
engines via :mod:`repro.core.conformance` for every supported policy,
and pin the fallback rules that keep ``simulate(..., fast=True)`` safe
for everything else.
"""

import pickle

import numpy as np
import pytest

from repro.core.conformance import (
    KIND_CODE,
    assert_conformant,
    check_conformance,
    conformance_suite,
    fast_outcomes,
    referee_outcomes,
)
from repro.core.engine import simulate
from repro.core.fast import (
    FAST_POLICY_NAMES,
    compile_trace,
    fast_simulate,
    supports,
)
from repro.core.mapping import ExplicitBlockMapping, FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.policies import make_policy, policy_names
from repro.workloads import hot_and_stream, markov_spatial, uniform_random, zipf_items

CAPACITIES = (1, 3, 8, 32)


def _trace(items, universe, B):
    return Trace(
        np.asarray(items, dtype=np.int64), FixedBlockMapping(universe, B)
    )


@pytest.fixture(scope="module")
def randomized_traces():
    """Seeded random traces over several (universe, B) geometries."""
    return {
        "uniform_b4": uniform_random(3000, universe=128, block_size=4, seed=11),
        "uniform_b1": uniform_random(1500, universe=64, block_size=1, seed=12),
        "zipf_b8": zipf_items(3000, universe=512, alpha=1.0, block_size=8, seed=13),
        "markov_b8": markov_spatial(
            3000, universe=256, block_size=8, stay=0.85, seed=14
        ),
        "hot_stream": hot_and_stream(
            3000, hot_items=24, stream_blocks=48, block_size=8, seed=15
        ),
    }


@pytest.fixture(scope="module")
def adversarial_traces():
    """Worst-case-shaped traces: sawtooth scans, ping-pong, thrash."""
    traces = {
        # Cyclic scan of k+1 distinct items: LRU's classic nemesis.
        "sawtooth": _trace(list(range(33)) * 30, universe=36, B=4),
        # Two blocks ping-ponging: exercises block eviction churn.
        "pingpong": _trace([0, 4, 1, 5, 2, 6, 3, 7] * 120, universe=8, B=4),
        # One block hammered: all-hit steady state.
        "hammer": _trace([2] * 400 + [0, 1, 2, 3] * 50, universe=8, B=4),
        # Hot items pinning blocks against a streaming scan (§5.1).
        "pollution": _trace(
            [x for i in range(300) for x in (0, 8 + (4 * i) % 56)],
            universe=64,
            B=4,
        ),
        # Capacity below block size (k < B): trimming paths + stale
        # block-entry replacement.
        "tiny_cache": _trace(
            np.random.default_rng(7).integers(0, 32, 800), universe=32, B=16
        ),
    }
    return traces


def test_randomized_grid_is_bit_identical(randomized_traces):
    rows = conformance_suite(randomized_traces, capacities=CAPACITIES)
    bad = [r for r in rows if not r["ok"]]
    assert not bad, "\n".join(
        f"{r['trace']}/{r['policy']}/k={r['capacity']}: {r['detail']}" for r in bad
    )


def test_adversarial_grid_is_bit_identical(adversarial_traces):
    rows = conformance_suite(adversarial_traces, capacities=CAPACITIES)
    bad = [r for r in rows if not r["ok"]]
    assert not bad, "\n".join(
        f"{r['trace']}/{r['policy']}/k={r['capacity']}: {r['detail']}" for r in bad
    )


@pytest.mark.parametrize("name", FAST_POLICY_NAMES)
def test_empty_trace_replay(name):
    trace = _trace([], universe=16, B=4)
    report = assert_conformant(name, 4, trace)
    assert report.accesses == 0


@pytest.mark.parametrize("name", FAST_POLICY_NAMES)
def test_degenerate_capacity_one(name):
    rng = np.random.default_rng(21)
    trace = _trace(rng.integers(0, 24, 600), universe=24, B=4)
    assert_conformant(name, 1, trace)


@pytest.mark.parametrize("name", FAST_POLICY_NAMES)
def test_degenerate_block_size_one(name):
    """B=1 collapses to traditional caching: no spatial hits anywhere."""
    rng = np.random.default_rng(22)
    trace = _trace(rng.integers(0, 24, 600), universe=24, B=1)
    report = assert_conformant(name, 6, trace)
    res = fast_simulate(make_policy(name, 6, trace.mapping), trace)
    assert res.spatial_hits == 0
    assert report.ok


@pytest.mark.parametrize("name", FAST_POLICY_NAMES)
def test_ragged_final_block(name):
    """A universe that is not a multiple of B leaves a short last block."""
    rng = np.random.default_rng(23)
    trace = _trace(rng.integers(0, 14, 600), universe=14, B=4)
    assert_conformant(name, 6, trace)


def test_athreshold_family_sweep():
    """Every a from eager (1) past degenerate (>= B) conforms."""
    rng = np.random.default_rng(24)
    trace = _trace(rng.integers(0, 64, 1200), universe=64, B=8)
    for a in (1, 2, 4, 8, 9):
        assert_conformant("athreshold-lru", 16, trace, a=a)


def test_iblp_split_extremes_conform():
    rng = np.random.default_rng(25)
    trace = _trace(rng.integers(0, 64, 1200), universe=64, B=8)
    for split in (0, 1, 8, 15, 16):
        assert_conformant("iblp", 16, trace, item_layer_size=split)


def test_outcome_stream_matches_referee_codes(randomized_traces):
    """The kernel's code stream equals the referee's classified stream."""
    trace = randomized_traces["zipf_b8"]
    ref_res, ref_codes = referee_outcomes(
        make_policy("block-lru", 32, trace.mapping), trace
    )
    fast_res, fast_codes = fast_outcomes(
        make_policy("block-lru", 32, trace.mapping), trace
    )
    assert ref_codes == fast_codes
    assert len(ref_codes) == len(trace)
    assert sorted(KIND_CODE.values()) == [0, 1, 2]
    assert fast_res.misses == ref_res.misses == fast_codes.count(0)


# -- fallback rules ----------------------------------------------------------
def test_unsupported_policy_returns_none():
    trace = _trace([0, 1, 2, 3], universe=16, B=4)
    belady = make_policy("belady-item", 4, trace.mapping)
    assert not supports(belady)
    assert fast_simulate(belady, trace) is None


def test_simulate_fast_falls_back_for_unsupported_policies():
    """fast=True on a kernel-less policy is the referee, bit for bit."""
    rng = np.random.default_rng(31)
    trace = _trace(rng.integers(0, 32, 500), universe=32, B=4)
    for name in sorted(policy_names()):
        ref = simulate(make_policy(name, 8, trace.mapping), trace)
        fst = simulate(make_policy(name, 8, trace.mapping), trace, fast=True)
        assert ref == fst, name


def test_warm_policy_falls_back_to_referee():
    trace = _trace([0, 1, 0, 1], universe=16, B=4)
    policy = make_policy("item-lru", 4, trace.mapping)
    policy.access(9)  # warm it up outside the trace
    assert fast_simulate(policy, trace) is None
    # simulate(fast=True) still works — referee continues from the warm
    # state exactly as it would without fast.
    res = simulate(policy, trace, fast=True)
    assert res.accesses == len(trace)
    assert res.temporal_hits == 2  # 0 and 1 stayed resident: warm state used


def test_mapping_mismatch_falls_back():
    """Equal (universe, B) but different partitions must not use kernels."""
    ids_a = [0, 0, 1, 1, 2, 2]
    ids_b = [0, 1, 0, 2, 1, 2]
    map_a = ExplicitBlockMapping(ids_a, max_block_size=2)
    map_b = ExplicitBlockMapping(ids_b, max_block_size=2)
    trace = Trace(np.array([0, 1, 2, 3, 4, 5]), map_a)
    policy = make_policy("block-lru", 4, map_b)
    assert fast_simulate(policy, trace) is None


def test_observation_keeps_the_referee():
    """on_access / recorder / cross_check_every force the referee path."""
    trace = _trace([0, 1, 0, 2], universe=16, B=4)
    seen = []
    res = simulate(
        make_policy("item-lru", 2, trace.mapping),
        trace,
        fast=True,
        on_access=lambda pos, item, kind: seen.append(pos),
    )
    assert seen == [0, 1, 2, 3]  # the observer ran: referee path
    assert res.accesses == 4


def test_fast_does_not_mutate_policy():
    rng = np.random.default_rng(33)
    trace = _trace(rng.integers(0, 32, 400), universe=32, B=4)
    policy = make_policy("iblp", 8, trace.mapping)
    res = fast_simulate(policy, trace)
    assert res.misses > 0
    assert policy.resident_items() == frozenset()


def test_check_conformance_rejects_kernel_less_policies():
    trace = _trace([0, 1, 2], universe=16, B=4)
    with pytest.raises(ConfigurationError, match="no fast kernel"):
        check_conformance("belady-item", 4, trace)


def test_compiled_trace_is_memoized():
    trace = _trace([0, 1, 2, 3], universe=16, B=4)
    assert compile_trace(trace) is compile_trace(trace)
    # The memo is keyed by content fingerprint, not object identity: a
    # pickled round-trip (what a pool worker receives per cell) must
    # hit the same compiled trace instead of recompiling.
    clone = pickle.loads(pickle.dumps(trace))
    assert clone is not trace
    assert compile_trace(clone) is compile_trace(trace)
    different = _trace([0, 1, 2, 4], universe=16, B=4)
    assert compile_trace(different) is not compile_trace(trace)


def test_compile_memo_is_bounded_and_can_be_disabled(monkeypatch):
    from repro.core import fast

    traces = [_trace([i, i + 1], universe=64, B=4) for i in range(0, 12, 2)]
    compiled = [compile_trace(t) for t in traces]
    assert len(fast._COMPILED) <= fast._COMPILE_MEMO_CAP
    # Most-recently-used entries survive the eviction sweep.
    assert compile_trace(traces[-1]) is compiled[-1]
    monkeypatch.setenv("REPRO_NO_COMPILE_MEMO", "1")
    assert compile_trace(traces[-1]) is not compiled[-1]


def test_compiled_trace_encoding():
    trace = _trace([8, 2, 8, 13], universe=16, B=4)
    ct = compile_trace(trace)
    assert ct.items == [8, 2, 8, 13]
    assert ct.blocks == [2, 0, 2, 3]
    assert ct.unique_items.tolist() == [2, 8, 13]
    assert ct.dense == [1, 0, 1, 2]  # indexes into unique_items
    assert ct.block_members[2] == (8, 9, 10, 11)
    assert ct.item_block[9] == 2  # side-load candidates covered too

"""Campaign specs and the content address: every hash input matters."""

import numpy as np
import pytest

import repro
from repro.campaign.spec import CampaignSpec, CellSpec, TraceSpec, cell_hash
from repro.core.mapping import ExplicitBlockMapping, FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.workloads import uniform_random


class TestTraceFingerprint:
    def test_same_content_same_fingerprint(self):
        a = uniform_random(500, universe=64, block_size=4, seed=7)
        b = Trace(
            a.items.copy(),
            FixedBlockMapping(universe=64, block_size=4),
            {"generator": "different-provenance"},
        )
        assert a.fingerprint() == b.fingerprint()  # metadata excluded

    def test_items_change_fingerprint(self):
        a = uniform_random(500, universe=64, block_size=4, seed=7)
        b = uniform_random(500, universe=64, block_size=4, seed=8)
        assert a.fingerprint() != b.fingerprint()

    def test_partition_changes_fingerprint(self):
        items = np.arange(32)
        a = Trace(items, FixedBlockMapping(universe=32, block_size=4))
        b = Trace(items, FixedBlockMapping(universe=32, block_size=8))
        assert a.fingerprint() != b.fingerprint()

    def test_explicit_mapping_fingerprints(self):
        items = np.arange(8)
        blocks = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        a = Trace(items, ExplicitBlockMapping(blocks, max_block_size=2))
        b = Trace(items, FixedBlockMapping(universe=8, block_size=2))
        # Same partition structure but a different mapping encoding is
        # allowed to hash differently; equal encodings must hash equal.
        c = Trace(items, ExplicitBlockMapping(blocks, max_block_size=2))
        assert a.fingerprint() == c.fingerprint()
        assert isinstance(b.fingerprint(), str)

    def test_npz_round_trip_preserves_fingerprint(self, tmp_path):
        a = uniform_random(200, universe=64, block_size=4, seed=1)
        a.save(tmp_path / "t.npz")
        assert Trace.load(tmp_path / "t.npz").fingerprint() == a.fingerprint()


class TestCellHash:
    BASE = dict(
        policy="item-lru",
        capacity=64,
        trace_fingerprint="f" * 64,
        fast=True,
        policy_kwargs={},
        version="1.0.0",
    )

    def test_deterministic(self):
        assert cell_hash(**self.BASE) == cell_hash(**self.BASE)

    @pytest.mark.parametrize(
        "change",
        [
            {"policy": "iblp"},
            {"capacity": 65},
            {"trace_fingerprint": "e" * 64},
            {"fast": False},
            {"policy_kwargs": {"seed": 1}},
            {"version": "1.0.1"},
        ],
    )
    def test_every_input_matters(self, change):
        assert cell_hash(**{**self.BASE, **change}) != cell_hash(**self.BASE)

    def test_kwargs_order_irrelevant(self):
        a = cell_hash(**{**self.BASE, "policy_kwargs": {"a": 1, "b": 2}})
        b = cell_hash(**{**self.BASE, "policy_kwargs": {"b": 2, "a": 1}})
        assert a == b

    def test_version_defaults_to_library(self):
        args = {k: v for k, v in self.BASE.items() if k != "version"}
        assert cell_hash(**args) == cell_hash(
            **{**self.BASE, "version": repro.__version__}
        )


class TestCampaignSpec:
    def _spec(self):
        return CampaignSpec.from_grid(
            name="demo",
            policies=["item-lru", "iblp"],
            capacities=[16, 64],
            traces={
                "u0": TraceSpec(
                    kind="workload",
                    name="uniform",
                    params={"length": 100, "universe": 32, "block_size": 4},
                )
            },
        )

    def test_grid_shape_and_order(self):
        spec = self._spec()
        assert [(c.policy, c.capacity) for c in spec.cells] == [
            ("item-lru", 16),
            ("item-lru", 64),
            ("iblp", 16),
            ("iblp", 64),
        ]

    def test_save_load_round_trip(self, tmp_path):
        spec = self._spec()
        spec.save(tmp_path)
        loaded = CampaignSpec.load(tmp_path)
        assert loaded.as_dict() == spec.as_dict()
        assert loaded.version == repro.__version__

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a campaign"):
            CampaignSpec.load(tmp_path / "nope")

    def test_unknown_trace_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown trace key"):
            CampaignSpec(
                name="x",
                traces={},
                cells=[CellSpec(policy="item-lru", capacity=4, trace="ghost")],
            )

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_grid(
                name="x", policies=[], capacities=[4], traces={}
            )

    def test_workload_trace_materializes(self):
        spec = self._spec()
        trace = spec.traces["u0"].materialize()
        assert len(trace) == 100
        assert trace.block_size == 4

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown campaign workload"):
            TraceSpec(kind="workload", name="nope").materialize()

    def test_file_trace_spec(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_text("0\n1\n2\n3\n")
        tspec = TraceSpec(kind="file", path=str(path), block_size=2)
        assert tspec.materialize().items.tolist() == [0, 1, 2, 3]
        # Editing the file changes the materialized fingerprint even
        # though the spec text is unchanged.
        fp = tspec.materialize().fingerprint()
        path.write_text("0\n1\n2\n7\n")
        assert tspec.materialize().fingerprint() != fp

"""Branch-and-bound exact solver tests (differential vs DP + scaling)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import simulate
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import SolverError
from repro.offline import (
    gc_opt_lower,
    gc_opt_upper,
    reduce_vsc_to_gc,
    solve_gc_bnb,
    solve_gc_exact,
    solve_vsc_exact,
)
from repro.offline.reduction import figure2_instance
from repro.policies import make_policy


def test_empty_trace():
    mapping = FixedBlockMapping(universe=4, block_size=2)
    trace = Trace(np.array([], dtype=np.int64), mapping)
    assert solve_gc_bnb(trace, 2) == 0


def test_known_instances():
    mapping = FixedBlockMapping(universe=8, block_size=4)
    assert solve_gc_bnb(Trace(np.array([0, 1, 2, 3]), mapping), 4) == 1
    assert solve_gc_bnb(Trace(np.array([0, 4, 0, 4]), mapping), 2) == 2
    assert solve_gc_bnb(Trace(np.array([0, 1, 0]), mapping), 1) == 3


def test_figure2_instance():
    vsc, red = figure2_instance()
    assert solve_gc_bnb(red.trace, red.capacity) == solve_vsc_exact(vsc) == 4


@settings(max_examples=30, deadline=None)
@given(
    items=st.lists(st.integers(0, 7), min_size=1, max_size=14),
    k=st.integers(1, 4),
)
def test_agrees_with_dp(items, k):
    mapping = FixedBlockMapping(universe=8, block_size=4)
    trace = Trace(np.asarray(items, dtype=np.int64), mapping)
    assert solve_gc_bnb(trace, k) == solve_gc_exact(trace, k)


def test_handles_larger_instance_than_dp_budget():
    mapping = FixedBlockMapping(universe=16, block_size=4)
    rng = np.random.default_rng(1)
    trace = Trace(rng.integers(0, 16, 24, dtype=np.int64), mapping)
    k = 6
    opt = solve_gc_bnb(trace, k)
    assert gc_opt_lower(trace, k) <= opt <= gc_opt_upper(trace, k)
    # And no online policy beats it.
    for name in ("item-lru", "iblp", "block-lru"):
        assert simulate(make_policy(name, k, mapping), trace).misses >= opt


def test_node_limit_raises():
    mapping = FixedBlockMapping(universe=16, block_size=4)
    rng = np.random.default_rng(2)
    trace = Trace(rng.integers(0, 16, 30, dtype=np.int64), mapping)
    with pytest.raises(SolverError):
        solve_gc_bnb(trace, 6, node_limit=3)


def test_reduction_equality_via_bnb():
    from repro.offline import VSCInstance

    rng = np.random.default_rng(3)
    for _ in range(4):
        n = int(rng.integers(2, 4))
        sizes = [int(rng.integers(1, 4)) for _ in range(n)]
        cap = max(sizes) + int(rng.integers(0, 3))
        tr = [int(rng.integers(n)) for _ in range(int(rng.integers(4, 8)))]
        vsc = VSCInstance.build(sizes, cap, tr)
        red = reduce_vsc_to_gc(vsc)
        assert solve_gc_bnb(red.trace, red.capacity) == solve_vsc_exact(vsc)

"""Locality package tests: analytic families, profiling, generator."""

import numpy as np
import pytest

from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.errors import ConfigurationError
from repro.locality import (
    LocalityProfile,
    PolynomialLocality,
    concavity_violations,
    phase_trace,
    profile_trace,
)
from repro.locality.profile import default_windows
from repro.workloads import markov_spatial, sequential_scan


class TestPolynomialLocality:
    def test_f_and_inverse_roundtrip(self):
        fam = PolynomialLocality(p=3.0, gamma=2.0, c=1.5)
        for n in (1.0, 10.0, 1234.0):
            assert fam.f_inverse(fam.f(n)) == pytest.approx(n, rel=1e-9)

    def test_g_and_inverse_roundtrip(self):
        fam = PolynomialLocality(p=2.0, gamma=4.0)
        for n in (100.0, 5000.0):
            assert fam.g_inverse(fam.g(n)) == pytest.approx(n, rel=1e-9)

    def test_g_floor_at_one(self):
        fam = PolynomialLocality(p=2.0, gamma=100.0)
        assert fam.g(4.0) == 1.0  # sqrt(4)/100 < 1 clamps

    def test_spatial_ratio(self):
        fam = PolynomialLocality(p=2.0, gamma=8.0)
        assert fam.spatial_ratio(10_000.0) == pytest.approx(8.0)

    def test_worst_gap_constructor(self):
        fam = PolynomialLocality.worst_gap(p=2.0, B=64.0)
        assert fam.gamma == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PolynomialLocality(p=0.5)
        with pytest.raises(ConfigurationError):
            PolynomialLocality(gamma=0.5)
        with pytest.raises(ConfigurationError):
            PolynomialLocality(c=0.0)

    def test_to_bounds_uses_exact_inverses(self):
        fam = PolynomialLocality(p=2.0, gamma=2.0)
        loc = fam.to_bounds()
        assert loc.finv(50.0) == pytest.approx(2500.0)
        assert loc.ginv(50.0) == pytest.approx(10_000.0)


class TestConcavity:
    def test_concave_sequence_clean(self):
        assert concavity_violations([1, 10, 15, 18, 20]) == []

    def test_detects_convex_jump(self):
        # Increment 3->10 exceeds 2->3; flagged at the middle index.
        assert concavity_violations([1, 2, 3, 10]) == [2]

    def test_detects_decrease(self):
        assert concavity_violations([5, 3, 2]) != []


class TestProfile:
    def test_scan_profile_shapes(self):
        trace = sequential_scan(universe=256, block_size=8)
        prof = profile_trace(trace, windows=[1, 8, 64, 256])
        assert prof.f_values.tolist() == [1, 8, 64, 256]
        # A window of n consecutive addresses straddles ceil(n/B)+1
        # blocks at most.
        assert prof.g_values[1] <= 2
        assert prof.g_values[2] <= 9

    def test_spatial_ratio_reflects_block_runs(self):
        trace = sequential_scan(universe=512, block_size=8)
        prof = profile_trace(trace, windows=[64])
        assert prof.spatial_ratio()[0] >= 6.0  # near B

    def test_f_inverse_interpolation(self):
        prof = LocalityProfile(
            windows=np.array([1, 10, 100]),
            f_values=np.array([1, 5, 20]),
            g_values=np.array([1, 3, 10]),
            block_size=4,
        )
        assert prof.f_inverse(5.0) == pytest.approx(10.0)
        assert 10.0 < prof.f_inverse(6.0) < 100.0
        assert prof.f_inverse(0.5) == 1.0
        # Beyond the samples: linear extrapolation with final slope.
        assert prof.f_inverse(30.0) > 100.0

    def test_to_bounds_integration(self):
        trace = markov_spatial(5000, universe=256, block_size=8, stay=0.9, seed=1)
        prof = profile_trace(trace)
        loc = prof.to_bounds()
        assert loc.f(10.0) <= 10.0
        assert loc.g(10.0) <= loc.f(10.0)

    def test_fit_polynomial_recovers_order(self):
        # A trace with strong reuse should fit p noticeably above 1.
        trace = markov_spatial(20_000, universe=128, block_size=8, stay=0.9, seed=2)
        c, p, gamma = profile_trace(trace).fit_polynomial()
        assert p > 1.1
        assert gamma >= 1.0

    def test_empty_trace_rejected(self):
        mapping = FixedBlockMapping(universe=8, block_size=2)
        trace = Trace(np.array([], dtype=np.int64), mapping)
        with pytest.raises(ConfigurationError):
            profile_trace(trace)

    def test_default_windows_cover_range(self):
        ws = default_windows(10_000)
        assert ws[0] == 1
        assert ws[-1] == 10_000
        assert all(a < b for a, b in zip(ws, ws[1:]))


class TestPhaseTrace:
    def test_respects_f_budget(self):
        fam = PolynomialLocality(p=2.0)
        trace = phase_trace(
            fam.f_inverse, fam.g, universe_items=33, block_size=4, phases=3
        )
        prof = profile_trace(trace)
        for n, f_val in zip(prof.windows, prof.f_values):
            assert f_val <= fam.f(float(n)) + 1

    def test_respects_g_budget(self):
        # +2 tolerance: windows that straddle a block transition (and
        # the pool's remainder block, k+1 not divisible by B) can hold
        # one or two extra blocks — the same O(1) slop the proof's
        # "at most g(...) blocks" partition absorbs.
        fam = PolynomialLocality(p=2.0, gamma=4.0)
        trace = phase_trace(
            fam.f_inverse, fam.g, universe_items=33, block_size=4, phases=3
        )
        prof = profile_trace(trace)
        for n, g_val in zip(prof.windows, prof.g_values):
            assert g_val <= fam.g(float(n)) + 2

    def test_deterministic_given_seed(self):
        fam = PolynomialLocality(p=2.0)
        a = phase_trace(fam.f_inverse, fam.g, 17, 4, phases=2, seed=5)
        b = phase_trace(fam.f_inverse, fam.g, 17, 4, phases=2, seed=5)
        assert a.items.tolist() == b.items.tolist()

    def test_rejects_insufficient_locality(self):
        with pytest.raises(ConfigurationError):
            phase_trace(lambda y: y - 8, lambda n: n, 33, 4)

    def test_rejects_tiny_universe(self):
        fam = PolynomialLocality(p=2.0)
        with pytest.raises(ConfigurationError):
            phase_trace(fam.f_inverse, fam.g, 1, 4)

"""E-SD: the size-dependence phenomenon (§5.3 / §6.2).

The paper's conceptual headline: in GC caching the *relative*
competitiveness of two online policies depends on the offline cache
size they are compared against.  Bench asserts both demonstrations —
the Theorem 7 curves of two tuned splits cross, and the measured
ranking of the same two splits flips between locality regimes.
"""

from __future__ import annotations

from repro.analysis.tables import format_table, write_csv
from repro.experiments import size_dependence


def test_bounds_level_crossing(benchmark, out_dir):
    cross = benchmark(size_dependence.bounds_crossing)
    write_csv([cross], out_dir / "size_dependence_bounds.csv")
    print()
    print(format_table([cross], title="§5.3 tuned-split crossing"))
    # Each split wins at its own design point…
    assert (
        cross["ratio_small_split_at_h_small"]
        < cross["ratio_large_split_at_h_small"]
    )
    assert (
        cross["ratio_large_split_at_h_large"]
        < cross["ratio_small_split_at_h_large"]
    )
    # …and the crossing sits strictly between them.
    assert cross["h_small"] < cross["h_cross"] < cross["h_large"]


def test_adaptive_split_hedges_both_regimes(benchmark, out_dir):
    """Extension: AdaptiveIBLP stays near the better fixed split in
    each regime the fixed splits trade off between."""
    rows = benchmark.pedantic(
        size_dependence.adaptive_hedge,
        kwargs={"k": 256, "B": 8},
        rounds=1,
        iterations=1,
    )
    write_csv(rows, out_dir / "size_dependence_adaptive.csv")
    print()
    print(format_table(rows, title="adaptive split vs fixed splits"))
    by = {(r["workload"], r["split"]): r["misses"] for r in rows}
    for workload in ("temporal_heavy", "spatial_heavy"):
        best_fixed = min(
            by[(workload, "item_heavy_split")],
            by[(workload, "block_heavy_split")],
        )
        worst_fixed = max(
            by[(workload, "item_heavy_split")],
            by[(workload, "block_heavy_split")],
        )
        assert by[(workload, "adaptive")] <= 1.6 * best_fixed
        assert by[(workload, "adaptive")] < 0.8 * worst_fixed


def test_empirical_ranking_flip(benchmark, out_dir):
    rows = benchmark.pedantic(
        size_dependence.empirical_flip,
        kwargs={"k": 256, "B": 8},
        rounds=1,
        iterations=1,
    )
    write_csv(rows, out_dir / "size_dependence_empirical.csv")
    print()
    print(format_table(rows, title="§5.3/§6.2 empirical ranking flip"))
    by = {(r["workload"], r["split"]): r["misses"] for r in rows}
    assert (
        by[("temporal_heavy", "item_heavy_split")]
        < by[("temporal_heavy", "block_heavy_split")]
    )
    assert (
        by[("spatial_heavy", "block_heavy_split")]
        < by[("spatial_heavy", "item_heavy_split")]
    )

"""E-PERF: fast replay kernels vs the referee — the speedup matrix.

Measures every policy covered by :mod:`repro.core.fast` on a Zipf
workload in three engine configurations:

* ``referee``        — full shadow validation (``validate=True``);
* ``referee-noval``  — referee bookkeeping without validation;
* ``fast``           — the array-backed replay kernel.

Emits ``benchmarks/out/fastpath_speedup.csv`` with per-policy wall
times and speedup factors plus the flight-recorder file
``BENCH_fastpath.json`` (via ``benchmarks/_harness.py``), and enforces
two acceptance gates:

* the Item LRU kernel replays a 10^6-access trace at least 3x faster
  than the validating referee with the identical miss count;
* ``multi_policy_replay`` runs the full ~20-cell ablation matrix
  (:func:`repro.experiments.ablation.matrix_cells`) in ONE shared
  traversal at least 5x faster than the pre-coverage per-policy fast
  loop — ``simulate(fast=True)`` as it stood when only the
  :data:`LEGACY_FAST_NAMES` kernels existed, i.e. fast kernels for
  those policies and the validating referee for everything else —
  again with bit-identical miss counts.

Trace lengths scale down for CI via ``REPRO_BENCH_MATRIX_LEN``,
``REPRO_BENCH_GATE_LEN``, and ``REPRO_BENCH_MULTI_LEN``; the
multi-policy bar is tunable via ``REPRO_FASTPATH_MULTI_GATE``.  Run
with ``pytest benchmarks/bench_fastpath.py`` (the gates run without
``--benchmark-only``).
"""

from __future__ import annotations

import os
import time

import pytest

from _harness import metric, write_bench
from repro.analysis.tables import format_table, write_csv
from repro.core.engine import simulate
from repro.core.fast import (
    FAST_POLICY_NAMES,
    compile_trace,
    fast_simulate,
    multi_policy_replay,
)
from repro.experiments.ablation import matrix_cells
from repro.policies import make_policy
from repro.workloads import zipf_items

#: Per-policy speedup matrix length.  The kernel table now covers the
#: whole registry including the GCM family, whose *referee* costs
#: O(k log k) per miss — 5x10^4 accesses keeps the 17-policy x
#: 3-config informational matrix to a few minutes.
MATRIX_LEN = int(os.environ.get("REPRO_BENCH_MATRIX_LEN", "50000"))
GATE_LEN = int(os.environ.get("REPRO_BENCH_GATE_LEN", "1000000"))
#: Multi-policy matrix gate length (20 cells, one shared traversal).
MULTI_LEN = int(os.environ.get("REPRO_BENCH_MULTI_LEN", "100000"))
MULTI_GATE = float(os.environ.get("REPRO_FASTPATH_MULTI_GATE", "5.0"))
K = 1024

#: The kernel coverage *before* the full-coverage PR: what
#: ``simulate(fast=True)`` could replay without falling back to the
#: validating referee.  The multi-policy gate's baseline loop routes
#: exactly these through ``fast_simulate`` and everything else through
#: the referee, reproducing the historical per-policy sweep cost.
LEGACY_FAST_NAMES = frozenset(
    {
        "athreshold-lru",
        "block-fifo",
        "block-lru",
        "iblp",
        "item-clock",
        "item-fifo",
        "item-lru",
    }
)

#: Both gate tests contribute to one ``BENCH_fastpath.json``;
#: ``_flush_record`` writes the union collected so far, so a filtered
#: run (``-k``) still produces a (partial) flight record.
_RECORD: dict = {"metrics": {}, "extra": {}}


def _flush_record() -> None:
    write_bench(
        "fastpath",
        metrics=dict(_RECORD["metrics"]),
        extra=dict(_RECORD["extra"]),
    )


@pytest.fixture(scope="module")
def matrix_trace():
    return zipf_items(MATRIX_LEN, universe=8192, alpha=1.0, block_size=8, seed=41)


@pytest.fixture(scope="module")
def gate_trace():
    return zipf_items(GATE_LEN, universe=16384, alpha=1.0, block_size=8, seed=42)


@pytest.fixture(scope="module")
def multi_trace():
    return zipf_items(MULTI_LEN, universe=8192, alpha=1.0, block_size=8, seed=43)


def _best_of(reps, fn):
    times = []
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return min(times), result


def _norm(cell):
    name, cap = cell[0], cell[1]
    return name, cap, (cell[2] if len(cell) == 3 else {})


def test_fastpath_speedup_matrix(matrix_trace, out_dir):
    """Referee vs kernel wall time for every fast-covered policy.

    The matrix is informational (written to CSV and printed); the only
    assertions are sanity ones — bit-identical miss counts and a weak
    never-slower-than-half bound that flags a pathological kernel
    without making the matrix a flaky timing gate.  The hard gates live
    in the two tests below.  Referee configurations are timed once
    (the GCM referee dominates the matrix wall clock); the cheap
    kernels keep best-of-3.
    """
    compile_trace(matrix_trace)  # compile once, outside the timed region
    rows = []
    for name in FAST_POLICY_NAMES:
        t_ref, ref = _best_of(
            1,
            lambda: simulate(
                make_policy(name, K, matrix_trace.mapping),
                matrix_trace,
                validate=True,
            ),
        )
        t_noval, _ = _best_of(
            1,
            lambda: simulate(
                make_policy(name, K, matrix_trace.mapping),
                matrix_trace,
                validate=False,
            ),
        )
        t_fast, fst = _best_of(
            3,
            lambda: fast_simulate(
                make_policy(name, K, matrix_trace.mapping), matrix_trace
            ),
        )
        assert fst is not None and fst.misses == ref.misses, name
        rows.append(
            {
                "policy": name,
                "referee_s": t_ref,
                "referee_noval_s": t_noval,
                "fast_s": t_fast,
                "speedup_vs_referee": t_ref / t_fast,
                "speedup_vs_noval": t_noval / t_fast,
                "accesses_per_s_fast": MATRIX_LEN / t_fast,
            }
        )
    write_csv(rows, out_dir / "fastpath_speedup.csv")
    print()
    print(format_table(rows, title="fast replay kernel speedup matrix"))
    for row in rows:
        assert row["speedup_vs_referee"] > 0.5, row


def test_item_lru_gate_three_x(gate_trace):
    """Acceptance gate: >= 3x over the validating referee at 10^6
    accesses, with an identical miss count."""
    compile_trace(gate_trace)
    t_ref, ref = _best_of(
        2,
        lambda: simulate(
            make_policy("item-lru", K, gate_trace.mapping),
            gate_trace,
            validate=True,
        ),
    )
    t_fast, fst = _best_of(
        2,
        lambda: fast_simulate(
            make_policy("item-lru", K, gate_trace.mapping), gate_trace
        ),
    )
    assert fst.misses == ref.misses
    speedup = t_ref / t_fast
    _RECORD["metrics"].update(
        referee_seconds=metric(t_ref, "s", "lower"),
        fast_seconds=metric(t_fast, "s", "lower"),
        speedup=metric(speedup, "x", "higher"),
        accesses_per_second_fast=metric(
            GATE_LEN / t_fast, "accesses/s", "higher"
        ),
    )
    _RECORD["extra"].update(
        policy="item-lru", trace_length=GATE_LEN, capacity=K
    )
    _flush_record()
    print(f"\nitem-lru 1e6 accesses: referee {t_ref:.3f}s, "
          f"fast {t_fast:.3f}s, speedup {speedup:.1f}x")
    assert speedup >= 3.0, f"fast path speedup {speedup:.2f}x < 3x gate"


def test_multi_policy_matrix_gate(multi_trace):
    """Acceptance gate: the single-pass multi-policy traversal beats
    the pre-coverage per-policy fast loop by >= 5x on the full
    ablation matrix, cell for cell bit-identical.

    The baseline replays each of the ~20 matrix cells exactly the way
    ``simulate(fast=True)`` did before the kernel table covered the
    whole registry: :data:`LEGACY_FAST_NAMES` through their kernels,
    every other cell (the GCM family, adaptive IBLP, LFU/MRU/Random/
    2Q/Marking) through the validating referee.  The contender runs
    all cells in ONE ``multi_policy_replay`` traversal.
    """
    cells = matrix_cells(K)
    compile_trace(multi_trace)

    def legacy_loop():
        results = []
        for name, cap, kwargs in map(_norm, cells):
            policy = make_policy(name, cap, multi_trace.mapping, **kwargs)
            if name in LEGACY_FAST_NAMES:
                results.append(fast_simulate(policy, multi_trace))
            else:
                results.append(simulate(policy, multi_trace, validate=True))
        return results

    t_legacy, legacy_results = _best_of(1, legacy_loop)
    t_multi, multi_results = _best_of(
        2, lambda: multi_policy_replay(cells, multi_trace)
    )
    assert [r.misses for r in multi_results] == [
        r.misses for r in legacy_results
    ]
    assert [r.spatial_hits for r in multi_results] == [
        r.spatial_hits for r in legacy_results
    ]
    speedup = t_legacy / t_multi
    cell_rate = len(cells) * MULTI_LEN / t_multi
    _RECORD["metrics"].update(
        legacy_loop_seconds=metric(t_legacy, "s", "lower"),
        multi_policy_seconds=metric(t_multi, "s", "lower"),
        multi_policy_speedup=metric(speedup, "x", "higher"),
        multi_policy_cell_accesses_per_second=metric(
            cell_rate, "cell-accesses/s", "higher"
        ),
    )
    _RECORD["extra"].update(
        multi_policy_cells=len(cells),
        multi_policy_trace_length=MULTI_LEN,
        legacy_fast_policies=sorted(LEGACY_FAST_NAMES),
    )
    _flush_record()
    print(
        f"\n{len(cells)}-cell matrix on {MULTI_LEN} accesses: "
        f"legacy per-policy loop {t_legacy:.2f}s, single-pass "
        f"{t_multi:.2f}s, speedup {speedup:.1f}x "
        f"({cell_rate:,.0f} cell-accesses/s)"
    )
    assert speedup >= MULTI_GATE, (
        f"multi-policy speedup {speedup:.2f}x < {MULTI_GATE}x gate"
    )

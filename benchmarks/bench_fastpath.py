"""E-PERF: fast replay kernels vs the referee — the speedup matrix.

Measures every policy covered by :mod:`repro.core.fast` on a Zipf
workload in three engine configurations:

* ``referee``        — full shadow validation (``validate=True``);
* ``referee-noval``  — referee bookkeeping without validation;
* ``fast``           — the array-backed replay kernel.

Emits ``benchmarks/out/fastpath_speedup.csv`` with per-policy wall
times and speedup factors plus the flight-recorder file
``BENCH_fastpath.json`` (via ``benchmarks/_harness.py``), and enforces
the acceptance gate: the Item LRU kernel replays a 10^6-access trace
at least 3x faster than the validating referee while producing the
identical miss count.  Run with ``pytest benchmarks/bench_fastpath.py``
(the gate runs without ``--benchmark-only``).
"""

from __future__ import annotations

import time

import pytest

from _harness import metric, write_bench
from repro.analysis.tables import format_table, write_csv
from repro.core.engine import simulate
from repro.core.fast import FAST_POLICY_NAMES, compile_trace, fast_simulate
from repro.policies import make_policy
from repro.workloads import zipf_items

MATRIX_LEN = 200_000
GATE_LEN = 1_000_000
K = 1024


@pytest.fixture(scope="module")
def matrix_trace():
    return zipf_items(MATRIX_LEN, universe=8192, alpha=1.0, block_size=8, seed=41)


@pytest.fixture(scope="module")
def gate_trace():
    return zipf_items(GATE_LEN, universe=16384, alpha=1.0, block_size=8, seed=42)


def _best_of(reps, fn):
    times = []
    result = None
    for _ in range(reps):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return min(times), result


def test_fastpath_speedup_matrix(matrix_trace, out_dir):
    """Referee vs kernel wall time for every fast-covered policy.

    The matrix is informational (written to CSV and printed); the only
    assertions are sanity ones — bit-identical miss counts and a weak
    never-slower-than-half bound that flags a pathological kernel
    without making the matrix a flaky timing gate.  The hard >= 3x gate
    lives in :func:`test_item_lru_gate_three_x` below.
    """
    compile_trace(matrix_trace)  # compile once, outside the timed region
    rows = []
    for name in FAST_POLICY_NAMES:
        t_ref, ref = _best_of(
            3,
            lambda: simulate(
                make_policy(name, K, matrix_trace.mapping),
                matrix_trace,
                validate=True,
            ),
        )
        t_noval, _ = _best_of(
            3,
            lambda: simulate(
                make_policy(name, K, matrix_trace.mapping),
                matrix_trace,
                validate=False,
            ),
        )
        t_fast, fst = _best_of(
            3,
            lambda: fast_simulate(
                make_policy(name, K, matrix_trace.mapping), matrix_trace
            ),
        )
        assert fst is not None and fst.misses == ref.misses, name
        rows.append(
            {
                "policy": name,
                "referee_s": t_ref,
                "referee_noval_s": t_noval,
                "fast_s": t_fast,
                "speedup_vs_referee": t_ref / t_fast,
                "speedup_vs_noval": t_noval / t_fast,
                "accesses_per_s_fast": MATRIX_LEN / t_fast,
            }
        )
    write_csv(rows, out_dir / "fastpath_speedup.csv")
    print()
    print(format_table(rows, title="fast replay kernel speedup matrix"))
    for row in rows:
        assert row["speedup_vs_referee"] > 0.5, row


def test_item_lru_gate_three_x(gate_trace):
    """Acceptance gate: >= 3x over the validating referee at 10^6
    accesses, with an identical miss count."""
    compile_trace(gate_trace)
    t_ref, ref = _best_of(
        2,
        lambda: simulate(
            make_policy("item-lru", K, gate_trace.mapping),
            gate_trace,
            validate=True,
        ),
    )
    t_fast, fst = _best_of(
        2,
        lambda: fast_simulate(
            make_policy("item-lru", K, gate_trace.mapping), gate_trace
        ),
    )
    assert fst.misses == ref.misses
    speedup = t_ref / t_fast
    write_bench(
        "fastpath",
        metrics={
            "referee_seconds": metric(t_ref, "s", "lower"),
            "fast_seconds": metric(t_fast, "s", "lower"),
            "speedup": metric(speedup, "x", "higher"),
            "accesses_per_second_fast": metric(
                GATE_LEN / t_fast, "accesses/s", "higher"
            ),
        },
        extra={"policy": "item-lru", "trace_length": GATE_LEN, "capacity": K},
    )
    print(f"\nitem-lru 1e6 accesses: referee {t_ref:.3f}s, "
          f"fast {t_fast:.3f}s, speedup {speedup:.1f}x")
    assert speedup >= 3.0, f"fast path speedup {speedup:.2f}x < 3x gate"

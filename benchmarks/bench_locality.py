"""E-LOC: empirical validation of the locality-model bounds (§7).

Adaptive Theorem 8 phases pin every deterministic policy at the lower
bound (up to the construction's O(1) slop); generated phase traces are
re-profiled and IBLP's measured fault rate checked against Theorem 11
on the empirical profile.
"""

from __future__ import annotations

from repro.analysis.tables import format_table, write_csv
from repro.experiments import locality_exp

K, B = 48, 4


def test_locality_model_validation(benchmark, out_dir):
    rows = benchmark.pedantic(
        locality_exp.run,
        kwargs={"k": K, "B": B, "p": 2.0, "phases": 4},
        rounds=1,
        iterations=1,
    )
    write_csv(rows, out_dir / "locality_validation.csv")
    print()
    print(format_table(rows, title=f"Locality model (k={K}, B={B}, p=2)"))
    slack = (K - 1) / (K + 1)
    for row in rows:
        if row["source"] == "adversarial":
            assert row["fault_rate"] >= row["thm8_lower"] * slack * 0.9, row
        if row["source"] == "generated" and row["policy"] == "iblp":
            assert row["fault_rate"] <= row["thm11_upper_iblp"] * 1.2, row
    # Spatial locality lowers the attainable bound; block-aware
    # policies track it while item caches stay ~B above in the
    # max-spatial regime.
    by = {
        (r["regime"], r["policy"], r["source"]): r["fault_rate"]
        for r in rows
    }
    max_sp_item = by[("max_spatial", "item-lru", "adversarial")]
    max_sp_iblp = by[("max_spatial", "iblp", "adversarial")]
    assert max_sp_item > 2.0 * max_sp_iblp

"""E-GCM: §6's randomized-policy claims, with seed statistics.

GCM vs block-oblivious marking (the B-factor claim), vs
mark-everything (the pollution claim), and the §6.1 partial-load dial —
each evaluated over a seed family with confidence intervals.
"""

from __future__ import annotations

from repro.analysis.tables import format_table, write_csv
from repro.experiments import gcm_analysis

K, B = 128, 8


def test_block_walk_b_factor(benchmark, out_dir):
    rows = benchmark.pedantic(
        gcm_analysis.block_walk,
        kwargs={"k": K, "B": B, "blocks": 256, "seeds": range(6)},
        rounds=1,
        iterations=1,
    )
    write_csv(rows, out_dir / "gcm_block_walk.csv")
    print()
    print(format_table(rows, title="§6 block walk (marking pays Bx)"))
    by = {r["label"]: r for r in rows}
    assert by["marking-lru"]["mean"] == B * by["gcm"]["mean"]


def test_pollution(benchmark, out_dir):
    rows = benchmark.pedantic(
        gcm_analysis.pollution,
        kwargs={"k": K, "B": B, "seeds": range(6)},
        rounds=1,
        iterations=1,
    )
    write_csv(rows, out_dir / "gcm_pollution.csv")
    print()
    print(format_table(rows, title="§6 pollution (marking side loads)"))
    by = {r["label"]: r for r in rows}
    assert by["gcm"]["ci_high"] < by["gcm-markall"]["ci_low"]


def test_partial_dial(benchmark, out_dir):
    rows = benchmark.pedantic(
        gcm_analysis.partial_dial,
        kwargs={"k": K, "B": B, "seeds": range(4)},
        rounds=1,
        iterations=1,
    )
    write_csv(rows, out_dir / "gcm_partial_dial.csv")
    print()
    print(format_table(rows, title="§6.1 partial-load dial"))
    means = [r["mean"] for r in rows]
    assert means[0] > means[-1]

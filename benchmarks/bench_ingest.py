"""E-INGEST: SHARDS-sampled MRCs vs exact, and bounded-memory ingestion.

Two claims are flight-recorded:

* **Sampled speedup** — computing the item-LRU miss-ratio curve from a
  SHARDS sample (rate ``REPRO_INGEST_RATE``, default 5 %) is at least
  ``REPRO_INGEST_GATE`` (default 10) times faster end-to-end than the
  exact batched Mattson replay, while the worst absolute miss-ratio
  error across the capacity grid stays within
  ``REPRO_INGEST_ERR_GATE`` (default 0.02, i.e. two points).  The
  reference workload is the evenly-loaded Markov spatial walk — the
  regime where the block-closed estimator's documented error model
  applies at 5 % (``docs/traces.md``; Zipf-skewed block popularity
  needs higher rates).
* **Bounded ingestion** — a child process converting a text trace to
  ``.rtc`` with a deliberately small chunk never grows its peak RSS by
  more than one tenth of the resulting file: the trace streamed
  through is >= 10x larger than the memory the converter held.

Knobs (env vars, so the CI smoke job can shrink the run):

* ``REPRO_INGEST_BENCH_LEN`` — MRC trace length (default 2_000_000)
* ``REPRO_INGEST_RATE``      — SHARDS rate (default 0.05)
* ``REPRO_INGEST_GATE``      — minimum sampled-vs-exact speedup (10.0)
* ``REPRO_INGEST_ERR_GATE``  — max absolute curve error (0.02)
* ``REPRO_INGEST_RSS_LEN``   — conversion trace length (default 4_000_000)

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_ingest.py``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from _harness import metric, write_bench
from repro.analysis.mrc import sampled_miss_ratio_curve
from repro.core.fast import multi_capacity_replay
from repro.workloads import markov_spatial

LENGTH = int(os.environ.get("REPRO_INGEST_BENCH_LEN", "2000000"))
RATE = float(os.environ.get("REPRO_INGEST_RATE", "0.05"))
GATE = float(os.environ.get("REPRO_INGEST_GATE", "10.0"))
ERR_GATE = float(os.environ.get("REPRO_INGEST_ERR_GATE", "0.02"))
RSS_LEN = int(os.environ.get("REPRO_INGEST_RSS_LEN", "4000000"))

UNIVERSE = 131_072
BLOCK_SIZE = 8
CAPACITIES = [4096, 16_384, 65_536, 131_072]
SAMPLER_SEED = 0
CONVERT_CHUNK = 8192

# The child measures its own high-water mark with getrusage, so the
# parent's (much larger) in-memory workload generation cannot leak in.
_RSS_CHILD = r"""
import json, resource, sys
from repro.workloads.stream import convert_to_rtc

src, out, chunk = sys.argv[1], sys.argv[2], int(sys.argv[3])
baseline_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
convert_to_rtc(src, out, chunk=chunk)
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({"baseline_kb": baseline_kb, "peak_kb": peak_kb}))
"""


def test_ingest_bench(tmp_path):
    trace = markov_spatial(
        length=LENGTH,
        universe=UNIVERSE,
        block_size=BLOCK_SIZE,
        stay=0.8,
        seed=11,
    )
    caps = [k for k in CAPACITIES if k <= UNIVERSE]

    t0 = time.perf_counter()
    exact = {
        k: r.miss_ratio
        for k, r in multi_capacity_replay("item-lru", trace, caps).items()
    }
    t_exact = time.perf_counter() - t0

    t0 = time.perf_counter()
    approx = dict(
        sampled_miss_ratio_curve(trace, caps, RATE, seed=SAMPLER_SEED)
    )
    t_sampled = time.perf_counter() - t0

    max_err = max(abs(approx[k] - exact[k]) for k in caps)
    speedup = t_exact / max(t_sampled, 1e-9)

    # -- bounded-memory conversion in a fresh child ----------------------
    src = tmp_path / "rss.txt"
    rss_trace = markov_spatial(
        length=RSS_LEN,
        universe=UNIVERSE,
        block_size=BLOCK_SIZE,
        stay=0.8,
        seed=12,
    )
    with open(src, "w") as fh:
        fh.write(f"# universe: {UNIVERSE}\n# block_size: {BLOCK_SIZE}\n")
        items = np.asarray(rss_trace.items)
        for lo in range(0, len(items), 262_144):
            fh.write("\n".join(map(str, items[lo : lo + 262_144].tolist())))
            fh.write("\n")
    del rss_trace, items

    out = tmp_path / "rss.rtc"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_CHILD, str(src), str(out), str(CONVERT_CHUNK)],
        capture_output=True,
        text=True,
        env=env,
        timeout=1200,
    )
    assert proc.returncode == 0, proc.stderr
    child = json.loads(proc.stdout)
    rss_increment = (child["peak_kb"] - child["baseline_kb"]) * 1024
    rtc_bytes = out.stat().st_size
    rss_cap = rtc_bytes / 10
    rss_cap_ratio = rss_increment / rss_cap

    write_bench(
        "ingest",
        metrics={
            "exact_seconds": metric(t_exact, "s", "lower"),
            "sampled_seconds": metric(t_sampled, "s", "lower"),
            "speedup": metric(speedup, "x", "higher"),
            "max_abs_error": metric(max_err, "miss-ratio", "lower"),
            "rss_cap_ratio": metric(rss_cap_ratio, "ratio", "lower"),
        },
        extra={
            "length": LENGTH,
            "universe": UNIVERSE,
            "block_size": BLOCK_SIZE,
            "capacities": caps,
            "rate": RATE,
            "sampler_seed": SAMPLER_SEED,
            "gate": GATE,
            "err_gate": ERR_GATE,
            "exact_curve": exact,
            "sampled_curve": approx,
            "rss_length": RSS_LEN,
            "rtc_bytes": rtc_bytes,
            "rss_increment_bytes": rss_increment,
            "convert_chunk": CONVERT_CHUNK,
        },
    )

    assert max_err <= ERR_GATE, (
        f"sampled MRC error {max_err:.4f} exceeds {ERR_GATE} "
        f"(rate={RATE}, seed={SAMPLER_SEED})"
    )
    assert speedup >= GATE, (
        f"sampled-vs-exact speedup {speedup:.1f}x below the {GATE}x gate "
        f"(exact {t_exact:.2f}s, sampled {t_sampled:.2f}s)"
    )
    assert rss_cap_ratio < 1.0, (
        f"converter peak RSS grew {rss_increment / 1e6:.1f} MB — more than "
        f"a tenth of the {rtc_bytes / 1e6:.1f} MB trace it streamed"
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(pytest.main([__file__, "-x", "-q"]))

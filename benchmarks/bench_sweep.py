"""E-SWEEP: batched multi-capacity sweeps vs the per-cell baseline.

Times an Item-LRU capacity sweep (12 capacities, 10^6-access Zipf
trace by default) two ways:

* **baseline** — the pre-batching parallel path, faithfully
  reproduced: ``batch="never"`` plus ``REPRO_NO_COMPILE_MEMO=1`` (the
  fingerprint-keyed compile memo would otherwise spare the baseline
  the per-cell recompiles it historically paid) and ``REPRO_NO_SHM=1``
  (per-cell trace pickling instead of arenas);
* **batched** — ``sweep`` as shipped: the grid collapses into one
  multi-capacity Mattson replay in the parent.

Asserts the two row sets are bit-identical, re-certifies the batched
kernel against the validating referee on a trace prefix, writes
machine-readable ``BENCH_sweep.json`` through the flight-recorder
harness (wall times, cells/sec, speedup, git sha, machine
fingerprint), and enforces the acceptance gate:
``speedup >= REPRO_SWEEP_GATE`` (default 5.0).

Knobs (all env vars, so the CI smoke job can shrink the run):

* ``REPRO_SWEEP_BENCH_LEN``  — trace length (default 1_000_000)
* ``REPRO_SWEEP_BENCH_CAPS`` — number of capacities (default 12)
* ``REPRO_SWEEP_GATE``       — minimum speedup (default 5.0; CI uses a
  lower bar since multi-core runners parallelize the baseline away)

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_sweep.py``.
"""

from __future__ import annotations

import os
import time

import pytest

from _harness import metric, write_bench
from repro.analysis.sweep import default_workers, grid, simulate_cell, sweep
from repro.core.conformance import assert_multi_capacity_conformant
from repro.core.trace import Trace
from repro.workloads import zipf_items

LENGTH = int(os.environ.get("REPRO_SWEEP_BENCH_LEN", "1000000"))
N_CAPS = int(os.environ.get("REPRO_SWEEP_BENCH_CAPS", "12"))
GATE = float(os.environ.get("REPRO_SWEEP_GATE", "5.0"))
CONFORMANCE_PREFIX = 20_000


@pytest.fixture(scope="module")
def bench_trace():
    return zipf_items(LENGTH, universe=16384, alpha=1.0, block_size=8, seed=42)


@pytest.fixture(scope="module")
def capacities():
    return [2 ** (4 + i) for i in range(N_CAPS)]


def _strip(rows):
    return [
        {k: v for k, v in row.items() if k not in ("trace", "fast")}
        for row in rows
    ]


def _timed_sweep(cells, workers, **kwargs):
    t0 = time.perf_counter()
    rows = sweep(
        simulate_cell, cells, parallel=True, max_workers=workers, **kwargs
    )
    return time.perf_counter() - t0, rows


def test_batched_sweep_gate(bench_trace, capacities, out_dir):
    assert len(capacities) >= 8  # the acceptance criterion's floor
    cells = grid(
        policy=["item-lru"], capacity=capacities, trace=[bench_trace]
    )
    workers = default_workers()

    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_NO_COMPILE_MEMO", "REPRO_NO_SHM")
    }
    os.environ["REPRO_NO_COMPILE_MEMO"] = "1"
    os.environ["REPRO_NO_SHM"] = "1"
    try:
        t_baseline, baseline_rows = _timed_sweep(
            cells, workers, batch="never"
        )
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value

    t_batched, batched_rows = _timed_sweep(cells, workers)

    # Identical rows, cell for cell: batching is a pure optimization.
    assert _strip(batched_rows) == _strip(baseline_rows)

    # Re-certify against the validating referee on a prefix (the full
    # conformance suite covers this too; the bench keeps its own gate
    # honest even when run standalone).
    prefix = Trace(
        bench_trace.items[:CONFORMANCE_PREFIX],
        bench_trace.mapping,
        dict(bench_trace.metadata),
    )
    assert_multi_capacity_conformant("item-lru", prefix, capacities)

    speedup = t_baseline / t_batched
    path = write_bench(
        "sweep",
        metrics={
            "baseline_seconds": metric(t_baseline, "s", "lower"),
            "batched_seconds": metric(t_batched, "s", "lower"),
            "cells_per_second_batched": metric(
                len(cells) / t_batched, "cells/s", "higher"
            ),
            "speedup": metric(speedup, "x", "higher"),
        },
        extra={
            "policy": "item-lru",
            "trace_length": LENGTH,
            "capacities": capacities,
            "cells": len(cells),
            "workers": workers,
            "gate": GATE,
        },
    )
    print(
        f"\nbatched sweep: {len(cells)} cells, baseline {t_baseline:.2f}s, "
        f"batched {t_batched:.2f}s, speedup {speedup:.1f}x -> {path}"
    )
    assert speedup >= GATE, (
        f"batched sweep speedup {speedup:.2f}x below the {GATE:.1f}x gate "
        f"(baseline {t_baseline:.2f}s, batched {t_batched:.2f}s)"
    )

"""E-F5: §5.2 LP analysis — numeric optima vs closed forms.

The authors solved these programs in Mathematica; here
scipy.optimize.linprog plays that role.  Theorems 5 and 6 must match
exactly; Theorem 7's closed form must upper-bound the numeric optimum
and be tight whenever its interior solution is feasible.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table, write_csv
from repro.experiments import figure5


def test_lp_validation(benchmark, out_dir):
    rows = benchmark.pedantic(
        figure5.run, kwargs={"B": 16.0}, rounds=1, iterations=1
    )
    write_csv(rows, out_dir / "figure5_lp.csv")
    print()
    print(format_table(rows, title="Figure 5 / §5.2 LP validation"))
    for row in rows:
        assert row["thm5_lp"] == pytest.approx(row["thm5_closed"], rel=1e-6)
        assert row["thm6_lp"] == pytest.approx(row["thm6_closed"], rel=0.02)
        assert row["closed_is_upper"]
        if row["interior_r"] > 0.01:
            # Paper's interior optimum feasible: closed form is tight.
            assert row["thm7_lp"] == pytest.approx(
                row["thm7_closed"], rel=0.02
            )

"""E-EXT: library extensions beyond the paper's read-only model.

Three extension subsystems, each with a measurable claim:

* **Two-level hierarchy** (`repro.hierarchy`) — Figure 1's concrete
  system: block-aware policies cut row activations on interleaved
  streams and amortize each activation over many useful items.
* **Write-back accounting** (`repro.core.readwrite`) — footnote 1's
  write side: granularity change mirrors onto write amplification
  (sequential writes coalesce; scattered writes pay whole-block RMWs).
* **Mattson MRC** (`repro.analysis.mrc`) — one-pass miss-ratio curves
  that agree exactly with simulation for the stack policies.
"""

from __future__ import annotations

import pytest

from repro.analysis.mrc import lru_stack_distances, miss_ratio_curve
from repro.analysis.tables import format_table, write_csv
from repro.core.engine import simulate
from repro.core.readwrite import WritebackSimulator, make_rw_trace
from repro.hierarchy import TwoLevelSimulator, traffic_cost
from repro.policies import IBLP, BlockLRU, ItemLRU
from repro.workloads import (
    dram_cache_workload,
    interleaved_streams,
    sequential_scan,
    zipf_items,
)


def test_hierarchy_row_activation_story(benchmark, out_dir):
    def run():
        trace = interleaved_streams(
            24_000, streams=8, blocks_per_stream=32, block_size=8
        )
        k = 256
        rows = []
        for policy in (
            ItemLRU(k, trace.mapping),
            BlockLRU(k, trace.mapping),
            IBLP(k, trace.mapping),
        ):
            stats = TwoLevelSimulator(policy, open_rows=1).run(trace)
            row = stats.as_row()
            row["traffic_cost"] = traffic_cost(stats)
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_csv(rows, out_dir / "ext_hierarchy.csv")
    print()
    print(format_table(rows, title="two-level row-buffer traffic"))
    by = {r["policy"]: r for r in rows}
    assert (
        by["item-lru"]["row_activations"]
        > 4 * by["iblp"]["row_activations"]
    )
    assert by["iblp"]["traffic_cost"] < by["item-lru"]["traffic_cost"]


def test_write_amplification_story(benchmark, out_dir):
    def run():
        rows = []
        # Sequential writes: block granularity retires clean.
        seq = make_rw_trace(sequential_scan(2048, block_size=8), 1.0, seed=0)
        for policy in (ItemLRU(128, seq.trace.mapping), BlockLRU(128, seq.trace.mapping)):
            stats = WritebackSimulator(policy).run(seq)
            row = stats.as_row()
            row["workload"] = "sequential"
            rows.append(row)
        # Scattered writes (zipf over scattered items): RMW-heavy.
        zipf = make_rw_trace(
            zipf_items(8000, 2048, alpha=1.0, block_size=8, seed=1), 0.5, seed=2
        )
        for policy in (ItemLRU(128, zipf.trace.mapping), BlockLRU(128, zipf.trace.mapping)):
            stats = WritebackSimulator(policy).run(zipf)
            row = stats.as_row()
            row["workload"] = "zipf"
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    write_csv(rows, out_dir / "ext_writeback.csv")
    print()
    print(format_table(rows, title="write-back amplification"))
    by = {(r["workload"], r["policy"]): r for r in rows}
    assert by[("sequential", "block-lru")]["rmw_fraction"] == 0.0
    assert by[("sequential", "block-lru")]["write_amplification"] == (
        pytest.approx(1.0)
    )
    assert by[("zipf", "item-lru")]["write_amplification"] > 1.5


def test_mrc_matches_simulation(benchmark, out_dir):
    trace = zipf_items(30_000, universe=4096, alpha=1.0, block_size=8, seed=3)

    def run():
        dists = lru_stack_distances(trace.items)
        return miss_ratio_curve(dists, [16, 64, 256, 1024])

    curve = benchmark(run)
    rows = [{"capacity": k, "mrc_miss_ratio": r} for k, r in curve]
    for row in rows:
        sim = simulate(ItemLRU(row["capacity"], trace.mapping), trace)
        row["simulated"] = sim.miss_ratio
        assert row["simulated"] == pytest.approx(
            row["mrc_miss_ratio"], abs=1e-12
        )
    write_csv(rows, out_dir / "ext_mrc.csv")
    print()
    print(format_table(rows, title="Mattson MRC vs simulation"))

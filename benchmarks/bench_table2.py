"""E-T2: regenerate Table 2 (locality-model fault-rate bounds).

Checks the asymptotic coefficients for the paper's three spatial
regimes, their finite-size convergence, and §7.3's takeaways (worst
gap at ``γ = B^{1-1/p}``, gap → B as p grows).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table, write_csv
from repro.bounds.locality import gap_vs_baseline
from repro.experiments import table2


def test_table2_asymptotic(benchmark, out_dir):
    def compute():
        rows = []
        for p in (2.0, 3.0, 4.0):
            rows.extend(table2.run_asymptotic(p=p, B=64.0))
        return rows

    rows = benchmark(compute)
    write_csv(rows, out_dir / "table2_asymptotic.csv")
    print()
    print(format_table(rows, title="Table 2 asymptotic coefficients"))
    by = {(r["p"], r["label"]): r for r in rows}
    for p in (2.0, 3.0, 4.0):
        # No spatial locality: item layer optimal, block layer B^{p-1}x.
        assert by[(p, "no_spatial")]["block_layer_coeff"] == pytest.approx(
            64.0 ** (p - 1)
        )
        # Max spatial locality: block layer optimal (1/B coefficient).
        assert by[(p, "max_spatial")]["block_layer_coeff"] == pytest.approx(
            1 / 64.0
        )
        # Worst-gap regime: both layers meet at coefficient 1.
        assert by[(p, "high_spatial")]["block_layer_coeff"] == pytest.approx(
            1.0
        )


def test_table2_finite_size(benchmark, out_dir):
    rows = benchmark(table2.run_numeric, p=2.0, B=64.0, i=2.0**14)
    write_csv(rows, out_dir / "table2_finite.csv")
    print()
    print(format_table(rows, title="Table 2 finite-size (i=b=2^14)"))
    by = {r["label"]: r for r in rows}
    # §7.3: the worst IBLP-vs-baseline gap is the middle regime, and it
    # approaches B^{1-1/p} = 8 for p = 2, B = 64.
    assert by["high_spatial"]["gap_vs_baseline"] >= by["no_spatial"][
        "gap_vs_baseline"
    ]
    assert by["high_spatial"]["gap_vs_baseline"] >= by["max_spatial"][
        "gap_vs_baseline"
    ]
    assert by["high_spatial"]["gap_vs_baseline"] == pytest.approx(
        gap_vs_baseline(2.0, 64.0), rel=0.25
    )


def test_table2_gap_limit(benchmark):
    gaps = benchmark(
        lambda: [gap_vs_baseline(p, 64.0) for p in (2, 4, 8, 64, 1024)]
    )
    # Monotone in p, limiting to B.
    assert all(a < b for a, b in zip(gaps, gaps[1:]))
    assert gaps[-1] == pytest.approx(64.0, rel=0.05)

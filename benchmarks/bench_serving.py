"""E-SERVING: request-level simulator throughput + latency separation.

Times one serving run (IBLP on a spatial Markov trace at 80% of
all-miss capacity) against the plain referee ``simulate()`` on the
same policy/trace.  The serving layer drives the same referee engine
and adds the event heap, queue bookkeeping, and histograms on top, so
the *overhead ratio* ``serving_seconds / referee_seconds`` is the
machine-independent cost of the serving layer — the number the CI
gate watches.  The run also re-asserts the conformance invariant
(serving's cache stream == offline's) and the paper-facing acceptance
criterion: IBLP's p99 beats item-LRU's p99 on this workload at this
load (reported as the machine-independent ``p99_separation`` ratio).

Writes ``BENCH_serving.json`` through the flight-recorder harness.

Knobs (env vars, so CI can shrink the run):

* ``REPRO_SERVING_BENCH_LEN`` — trace length (default 300_000)
* ``REPRO_SERVING_GATE``      — max overhead ratio (default 8.0)

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_serving.py``.
"""

from __future__ import annotations

import os
import time

import pytest

from _harness import metric, write_bench
from repro.campaign.runner import result_fields
from repro.core.engine import simulate
from repro.policies import make_policy
from repro.serving import ArrivalSpec, ServiceModel, ServingConfig, serve
from repro.workloads import markov_spatial

LENGTH = int(os.environ.get("REPRO_SERVING_BENCH_LEN", "300000"))
GATE = float(os.environ.get("REPRO_SERVING_GATE", "8.0"))
CAPACITY = 256
T_HIT, T_MISS, T_ITEM = 1.0, 100.0, 1.0
CONCURRENCY = 4
LOAD = 0.8


@pytest.fixture(scope="module")
def bench_trace():
    return markov_spatial(
        length=LENGTH, universe=4096, block_size=8, stay=0.85, seed=7
    )


def bench_config():
    rate = LOAD * CONCURRENCY / (T_HIT + T_MISS)
    return ServingConfig(
        arrival=ArrivalSpec(process="poisson", rate=rate, seed=1),
        service=ServiceModel(t_hit=T_HIT, t_miss=T_MISS, t_item=T_ITEM),
        concurrency=CONCURRENCY,
    )


def _timed_serve(policy_name, trace):
    policy = make_policy(policy_name, CAPACITY, trace.mapping)
    t0 = time.perf_counter()
    result = serve(policy, trace, bench_config())
    return time.perf_counter() - t0, result


def test_serving_overhead_gate(bench_trace, out_dir):
    t_serve, served = _timed_serve("iblp", bench_trace)

    t0 = time.perf_counter()
    offline = simulate(make_policy("iblp", CAPACITY, bench_trace.mapping), bench_trace)
    t_referee = time.perf_counter() - t0

    # Serving must not have changed a single cache decision.
    assert result_fields(served.sim) == result_fields(offline)

    # The acceptance criterion, as a bench-visible ratio: granularity-
    # aware loading must beat item granularity on p99 latency here.
    _, rival = _timed_serve("item-lru", bench_trace)
    separation = rival.p99 / served.p99

    overhead = t_serve / t_referee
    path = write_bench(
        "serving",
        metrics={
            "serving_seconds": metric(t_serve, "s", "lower"),
            "referee_seconds": metric(t_referee, "s", "lower"),
            "requests_per_second": metric(LENGTH / t_serve, "req/s", "higher"),
            "overhead_vs_referee": metric(overhead, "x", "lower"),
            "p99_separation": metric(separation, "x", "higher"),
        },
        extra={
            "trace_length": LENGTH,
            "capacity": CAPACITY,
            "concurrency": CONCURRENCY,
            "load": LOAD,
            "iblp_p99": served.p99,
            "item_lru_p99": rival.p99,
            "iblp_miss_ratio": served.sim.miss_ratio,
            "item_lru_miss_ratio": rival.sim.miss_ratio,
            "gate": GATE,
        },
    )
    print(
        f"\nserving: {LENGTH} reqs in {t_serve:.2f}s "
        f"({LENGTH / t_serve:,.0f} req/s), referee {t_referee:.2f}s, "
        f"overhead {overhead:.2f}x, p99 separation {separation:.2f}x -> {path}"
    )
    assert overhead <= GATE, (
        f"serving overhead {overhead:.2f}x above the {GATE:.1f}x gate "
        f"(serving {t_serve:.2f}s vs referee {t_referee:.2f}s)"
    )
    assert separation > 1.0, (
        f"IBLP p99 {served.p99:.1f} not better than item-LRU p99 "
        f"{rival.p99:.1f} on the spatial workload"
    )

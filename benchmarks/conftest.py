"""Shared fixtures for the reproduction benches.

Every bench writes its rows to ``benchmarks/out/*.csv`` so
EXPERIMENTS.md can reference stable artifacts, and registers timing via
pytest-benchmark (run with ``pytest benchmarks/ --benchmark-only``).
"""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture(scope="session")
def out_dir() -> Path:
    path = Path(__file__).parent / "out"
    path.mkdir(exist_ok=True)
    return path

"""Campaign orchestration: memoization payoff and overhead.

Three measurements:

* cold campaign vs the equivalent plain serial ``sweep`` — the
  orchestration overhead (store writes, journaling, hashing) on a real
  grid;
* warm re-run of the same campaign — everything served from the
  content-addressed store, which must be far faster than recomputing;
* :class:`~repro.campaign.CampaignCache`-backed ablation study — the
  experiment-integration path, warm vs cold.

Artifacts: ``out/campaign_rows.csv`` (the grid rows, identical cold
and warm), ``out/campaign_timing.csv``, and the flight-recorder file
``BENCH_campaign.json`` (via ``benchmarks/_harness.py``).
"""

from __future__ import annotations

import time

from _harness import metric, write_bench
from repro.analysis.sweep import simulate_cell, sweep
from repro.analysis.tables import format_table, write_csv
from repro.campaign import CampaignCache, CampaignRunner, CampaignSpec, TraceSpec
from repro.experiments import ablation

SPEC_TRACES = {
    "zipf": TraceSpec(
        kind="workload",
        name="zipf",
        params={
            "length": 30_000,
            "universe": 2048,
            "alpha": 1.0,
            "block_size": 8,
            "seed": 0,
        },
    ),
    "markov": TraceSpec(
        kind="workload",
        name="markov",
        params={
            "length": 30_000,
            "universe": 2048,
            "block_size": 8,
            "stay": 0.8,
            "seed": 0,
        },
    ),
}


def _spec() -> CampaignSpec:
    return CampaignSpec.from_grid(
        name="bench",
        policies=["item-lru", "block-lru", "iblp", "gcm"],
        capacities=[64, 256],
        traces=SPEC_TRACES,
        fast=True,
    )


def test_campaign_cold_warm_vs_sweep(benchmark, tmp_path, out_dir):
    spec = _spec()

    t0 = time.perf_counter()
    traces = {key: t.materialize() for key, t in spec.traces.items()}
    sweep_rows = sweep(
        simulate_cell,
        [
            dict(
                policy=c.policy,
                capacity=c.capacity,
                trace=traces[c.trace],
                fast=c.fast,
            )
            for c in spec.cells
        ],
    )
    sweep_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    with CampaignRunner(tmp_path, spec) as runner:
        cold = runner.run()
    cold_s = time.perf_counter() - t0
    assert cold.computed == len(spec.cells)

    def warm_run():
        with CampaignRunner(tmp_path, spec) as runner:
            return runner.run()

    warm = benchmark.pedantic(warm_run, rounds=3, iterations=1)
    assert warm.computed == 0
    assert warm.memo_hits == len(spec.cells)

    rows = warm.rows()
    for row, expected in zip(rows, sweep_rows):
        row.pop("trace")
        expected.pop("trace")
    assert rows == sweep_rows  # warm rows bit-identical to plain sweep

    write_csv(warm.rows(), out_dir / "campaign_rows.csv")
    timing = [
        {"mode": "plain_sweep", "seconds": sweep_s},
        {"mode": "campaign_cold", "seconds": cold_s},
        {"mode": "campaign_warm", "seconds": warm.seconds},
    ]
    write_csv(timing, out_dir / "campaign_timing.csv")
    write_bench(
        "campaign",
        metrics={
            "plain_sweep_seconds": metric(sweep_s, "s", "lower"),
            "cold_seconds": metric(cold_s, "s", "lower"),
            "warm_seconds": metric(warm.seconds, "s", "lower"),
            "cold_overhead_x": metric(cold_s / sweep_s, "x", "lower"),
            "warm_speedup": metric(sweep_s / warm.seconds, "x", "higher"),
        },
        extra={"cells": len(spec.cells), "policies": 4, "capacities": 2},
    )
    print()
    print(format_table(timing, title="campaign orchestration timing"))
    # The whole point: a warm campaign must crush recomputation.
    assert warm.seconds < 0.5 * sweep_s


def test_campaign_cache_ablation(benchmark, tmp_path, out_dir):
    kwargs = {"k": 256, "B": 8}

    with CampaignCache(tmp_path) as cache:
        cold = ablation.gcm_variants(cache=cache, **kwargs)
        assert cache.computed > 0 and cache.hits == 0

    def warm():
        with CampaignCache(tmp_path) as cache:
            rows = ablation.gcm_variants(cache=cache, **kwargs)
            return rows, cache

    rows, cache = benchmark.pedantic(warm, rounds=3, iterations=1)
    assert cache.computed == 0 and cache.hit_ratio == 1.0
    assert rows == cold
    write_csv(rows, out_dir / "campaign_cache_ablation.csv")
    print()
    print(format_table(rows, title="cache-backed §6 GCM variants"))

"""E-PERF: simulator throughput (accesses per second).

Timing benches proper: policy hot loops on realistic workloads, the
referee's overhead, the LinkedLRU vs OrderedLRU substrate choice, and
the telemetry instrumentation audit.  Run with
``pytest benchmarks/ --benchmark-only`` to get ops/sec; the
instrumentation matrix also writes
``benchmarks/out/throughput_overhead.csv`` and enforces the telemetry
overhead budget (full per-access tracing ≤ 2× the uninstrumented
path).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis.tables import format_table, write_csv
from repro.core.engine import simulate
from repro.policies import make_policy
from repro.structs.linked_lru import LinkedLRU
from repro.structs.ordered_lru import OrderedLRU
from repro.telemetry import Recorder, RingBufferSink
from repro.workloads import markov_spatial, zipf_items

TRACE_LEN = 50_000
K = 1024


@pytest.fixture(scope="module")
def zipf_trace():
    return zipf_items(TRACE_LEN, universe=8192, alpha=1.0, block_size=64, seed=1)


@pytest.fixture(scope="module")
def spatial_trace():
    return markov_spatial(
        TRACE_LEN, universe=8192, block_size=64, stay=0.85, seed=2
    )


@pytest.mark.parametrize(
    "policy_name",
    ["item-lru", "item-clock", "block-lru", "iblp", "gcm", "athreshold-lru"],
)
def test_policy_throughput_zipf(benchmark, zipf_trace, policy_name):
    def run():
        policy = make_policy(policy_name, K, zipf_trace.mapping)
        return simulate(policy, zipf_trace, validate=False).misses

    misses = benchmark(run)
    assert 0 < misses <= TRACE_LEN


@pytest.mark.parametrize("policy_name", ["item-lru", "iblp", "block-lru"])
def test_policy_throughput_spatial(benchmark, spatial_trace, policy_name):
    def run():
        policy = make_policy(policy_name, K, spatial_trace.mapping)
        return simulate(policy, spatial_trace, validate=False).misses

    misses = benchmark(run)
    assert 0 < misses <= TRACE_LEN


def test_referee_overhead(benchmark, zipf_trace):
    """Validated run; compare against the unvalidated bench above."""

    def run():
        policy = make_policy("iblp", K, zipf_trace.mapping)
        return simulate(policy, zipf_trace, validate=True).misses

    misses = benchmark(run)
    assert misses > 0


def _lru_workout(lru_cls, keys):
    lru = lru_cls()
    resident = set()
    for key in keys:
        if key in resident:
            lru.touch(key)
        else:
            if len(resident) >= 512:
                victim, _ = lru.pop_lru()
                resident.discard(victim)
            lru.insert_mru(key)
            resident.add(key)
    return len(resident)


@pytest.fixture(scope="module")
def lru_keys():
    rng = np.random.default_rng(3)
    return rng.integers(0, 2048, size=100_000).tolist()


def test_linked_lru_throughput(benchmark, lru_keys):
    assert benchmark(_lru_workout, LinkedLRU, lru_keys) == 512


def test_ordered_lru_throughput(benchmark, lru_keys):
    assert benchmark(_lru_workout, OrderedLRU, lru_keys) == 512


def _telemetry_recorder(mode: str):
    """Recorder for one matrix cell: off / aggregate / full-trace."""
    if mode == "off":
        return None
    if mode == "aggregate":
        return Recorder(window=1000)
    # Full per-access tracing into memory (a disk sink would measure
    # the filesystem, not the instrumentation).
    return Recorder(
        window=1000, sinks=[RingBufferSink(maxlen=2 * TRACE_LEN)], sample_rate=1.0
    )


def test_instrumentation_overhead_matrix(zipf_trace, out_dir):
    """Audit: validate on/off × telemetry off/aggregate/full-trace.

    Emits the matrix to ``benchmarks/out/throughput_overhead.csv`` and
    asserts the budget the telemetry layer is designed to: full
    per-access tracing costs at most 2× the matching uninstrumented
    run (best-of-3 wall times to shed scheduler noise).
    """
    reps = 3
    rows = []
    best: dict = {}
    for validate in (False, True):
        for mode in ("off", "aggregate", "full"):
            times = []
            for _ in range(reps):
                policy = make_policy("iblp", K, zipf_trace.mapping)
                recorder = _telemetry_recorder(mode)
                t0 = time.perf_counter()
                res = simulate(
                    policy, zipf_trace, validate=validate, recorder=recorder
                )
                times.append(time.perf_counter() - t0)
            assert 0 < res.misses <= TRACE_LEN
            seconds = min(times)
            best[(validate, mode)] = seconds
            rows.append(
                {
                    "validate": validate,
                    "telemetry": mode,
                    "seconds": seconds,
                    "accesses_per_s": TRACE_LEN / seconds,
                }
            )
    for row in rows:
        baseline = best[(row["validate"], "off")]
        row["overhead_x"] = row["seconds"] / baseline
    write_csv(rows, out_dir / "throughput_overhead.csv")
    print()
    print(format_table(rows, title="telemetry instrumentation overhead"))
    assert best[(False, "full")] <= 2.0 * best[(False, "off")]
    assert best[(True, "full")] <= 2.0 * best[(True, "off")]
    # Aggregate-only telemetry must be strictly cheaper than full trace.
    assert best[(False, "aggregate")] <= best[(False, "full")] * 1.25


def test_belady_preparation_throughput(benchmark, zipf_trace):
    """Offline next-use precomputation is a single backward pass."""
    from repro.policies.belady import next_use_array

    out = benchmark(next_use_array, zipf_trace.items)
    assert out.shape == zipf_trace.items.shape

"""E-PERF: simulator throughput (accesses per second).

Timing benches proper: policy hot loops on realistic workloads, the
referee's overhead, the LinkedLRU vs OrderedLRU substrate choice, and
the instrumentation audit.  Run with
``pytest benchmarks/ --benchmark-only`` to get ops/sec; the
instrumentation matrix also writes
``benchmarks/out/throughput_overhead.csv`` plus the flight-recorder
file ``BENCH_throughput.json`` and enforces the instrumentation
budgets: full per-access telemetry ≤ 2× the uninstrumented path, and
ambient span tracing ≤ 1.3× on the full-trace fast path.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _harness import metric, write_bench
from repro.analysis.tables import format_table, write_csv
from repro.core.engine import simulate
from repro.core.fast import compile_trace, fast_simulate
from repro.policies import make_policy
from repro.structs.linked_lru import LinkedLRU
from repro.structs.ordered_lru import OrderedLRU
from repro.telemetry import Recorder, RingBufferSink, spans
from repro.telemetry.spans import SpanTracer
from repro.workloads import markov_spatial, zipf_items

TRACE_LEN = 50_000
SPAN_GATE_LEN = 400_000
SPAN_OVERHEAD_BUDGET = 1.3
K = 1024


@pytest.fixture(scope="module")
def zipf_trace():
    return zipf_items(TRACE_LEN, universe=8192, alpha=1.0, block_size=64, seed=1)


@pytest.fixture(scope="module")
def spatial_trace():
    return markov_spatial(
        TRACE_LEN, universe=8192, block_size=64, stay=0.85, seed=2
    )


@pytest.mark.parametrize(
    "policy_name",
    ["item-lru", "item-clock", "block-lru", "iblp", "gcm", "athreshold-lru"],
)
def test_policy_throughput_zipf(benchmark, zipf_trace, policy_name):
    def run():
        policy = make_policy(policy_name, K, zipf_trace.mapping)
        return simulate(policy, zipf_trace, validate=False).misses

    misses = benchmark(run)
    assert 0 < misses <= TRACE_LEN


@pytest.mark.parametrize("policy_name", ["item-lru", "iblp", "block-lru"])
def test_policy_throughput_spatial(benchmark, spatial_trace, policy_name):
    def run():
        policy = make_policy(policy_name, K, spatial_trace.mapping)
        return simulate(policy, spatial_trace, validate=False).misses

    misses = benchmark(run)
    assert 0 < misses <= TRACE_LEN


def test_referee_overhead(benchmark, zipf_trace):
    """Validated run; compare against the unvalidated bench above."""

    def run():
        policy = make_policy("iblp", K, zipf_trace.mapping)
        return simulate(policy, zipf_trace, validate=True).misses

    misses = benchmark(run)
    assert misses > 0


def _lru_workout(lru_cls, keys):
    lru = lru_cls()
    resident = set()
    for key in keys:
        if key in resident:
            lru.touch(key)
        else:
            if len(resident) >= 512:
                victim, _ = lru.pop_lru()
                resident.discard(victim)
            lru.insert_mru(key)
            resident.add(key)
    return len(resident)


@pytest.fixture(scope="module")
def lru_keys():
    rng = np.random.default_rng(3)
    return rng.integers(0, 2048, size=100_000).tolist()


def test_linked_lru_throughput(benchmark, lru_keys):
    assert benchmark(_lru_workout, LinkedLRU, lru_keys) == 512


def test_ordered_lru_throughput(benchmark, lru_keys):
    assert benchmark(_lru_workout, OrderedLRU, lru_keys) == 512


def _telemetry_recorder(mode: str):
    """Recorder for one matrix cell: off / aggregate / full-trace."""
    if mode == "off":
        return None
    if mode == "aggregate":
        return Recorder(window=1000)
    # Full per-access tracing into memory (a disk sink would measure
    # the filesystem, not the instrumentation).
    return Recorder(
        window=1000, sinks=[RingBufferSink(maxlen=2 * TRACE_LEN)], sample_rate=1.0
    )


def _span_gate_trace():
    return zipf_items(
        SPAN_GATE_LEN, universe=16384, alpha=1.0, block_size=8, seed=7
    )


def _timed_fast_replay(trace, reps):
    """Best-of wall time for one fast-path replay (memoized compile)."""
    times = []
    result = None
    for _ in range(reps):
        policy = make_policy("item-lru", K, trace.mapping)
        t0 = time.perf_counter()
        result = fast_simulate(policy, trace)
        times.append(time.perf_counter() - t0)
    assert result is not None and result.misses > 0
    return min(times)


def test_instrumentation_overhead_matrix(zipf_trace, out_dir):
    """Audit: validate on/off × telemetry off/aggregate/full-trace,
    plus a spans-enabled column for the fast replay path.

    Emits the matrix to ``benchmarks/out/throughput_overhead.csv``
    (and ``BENCH_throughput.json`` via the flight-recorder harness)
    and asserts the budgets the instrumentation layers are designed
    to: full per-access telemetry costs at most 2× the matching
    uninstrumented run, and ambient span tracing at most
    ``SPAN_OVERHEAD_BUDGET``× on the full-trace fast path (best-of
    wall times to shed scheduler noise).  Spans never appear in the
    referee rows — the referee has no span call sites by design (they
    instrument whole replays, never per-access work).
    """
    reps = 3
    rows = []
    best: dict = {}
    for validate in (False, True):
        for mode in ("off", "aggregate", "full"):
            times = []
            for _ in range(reps):
                policy = make_policy("iblp", K, zipf_trace.mapping)
                recorder = _telemetry_recorder(mode)
                t0 = time.perf_counter()
                res = simulate(
                    policy, zipf_trace, validate=validate, recorder=recorder
                )
                times.append(time.perf_counter() - t0)
            assert 0 < res.misses <= TRACE_LEN
            seconds = min(times)
            best[(validate, mode)] = seconds
            rows.append(
                {
                    "engine": "referee",
                    "validate": validate,
                    "telemetry": mode,
                    "spans": False,
                    "seconds": seconds,
                    "accesses_per_s": TRACE_LEN / seconds,
                }
            )
    for row in rows:
        baseline = best[(row["validate"], "off")]
        row["overhead_x"] = row["seconds"] / baseline

    # The spans-enabled column: the fast replay kernel with and
    # without ambient span tracing (spans wrap whole replays, so this
    # is where their overhead would show — and must stay bounded).
    span_trace = _span_gate_trace()
    compile_trace(span_trace)  # memoize outside the timed region
    assert not spans.enabled()
    t_plain = _timed_fast_replay(span_trace, reps=5)
    spans.enable(SpanTracer(sinks=[RingBufferSink(maxlen=4096)]))
    try:
        t_spans = _timed_fast_replay(span_trace, reps=5)
    finally:
        spans.disable()
    span_overhead = t_spans / t_plain
    for enabled, seconds in ((False, t_plain), (True, t_spans)):
        rows.append(
            {
                "engine": "fast",
                "validate": False,
                "telemetry": "off",
                "spans": enabled,
                "seconds": seconds,
                "accesses_per_s": SPAN_GATE_LEN / seconds,
                "overhead_x": seconds / t_plain,
            }
        )

    write_csv(rows, out_dir / "throughput_overhead.csv")
    write_bench(
        "throughput",
        metrics={
            "telemetry_full_overhead_x": metric(
                best[(False, "full")] / best[(False, "off")], "x", "lower"
            ),
            "span_overhead_x": metric(span_overhead, "x", "lower"),
            "fast_accesses_per_second": metric(
                SPAN_GATE_LEN / t_plain, "accesses/s", "higher"
            ),
            "referee_accesses_per_second": metric(
                TRACE_LEN / best[(False, "off")], "accesses/s", "higher"
            ),
        },
        extra={
            "trace_length": TRACE_LEN,
            "span_gate_length": SPAN_GATE_LEN,
            "span_overhead_budget": SPAN_OVERHEAD_BUDGET,
        },
    )
    print()
    print(format_table(rows, title="instrumentation overhead"))
    assert best[(False, "full")] <= 2.0 * best[(False, "off")]
    assert best[(True, "full")] <= 2.0 * best[(True, "off")]
    # Aggregate-only telemetry must be strictly cheaper than full trace.
    assert best[(False, "aggregate")] <= best[(False, "full")] * 1.25
    # The span-tracing budget on the full-trace fast path.
    assert span_overhead <= SPAN_OVERHEAD_BUDGET, (
        f"span tracing overhead {span_overhead:.2f}x exceeds the "
        f"{SPAN_OVERHEAD_BUDGET}x budget "
        f"(plain {t_plain:.4f}s, spans {t_spans:.4f}s)"
    )


def test_belady_preparation_throughput(benchmark, zipf_trace):
    """Offline next-use precomputation is a single backward pass."""
    from repro.policies.belady import next_use_array

    out = benchmark(next_use_array, zipf_trace.items)
    assert out.shape == zipf_trace.items.shape

"""E-PERF: simulator throughput (accesses per second).

Timing benches proper: policy hot loops on realistic workloads, the
referee's overhead, and the LinkedLRU vs OrderedLRU substrate choice.
Run with ``pytest benchmarks/ --benchmark-only`` to get ops/sec.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import simulate
from repro.policies import make_policy
from repro.structs.linked_lru import LinkedLRU
from repro.structs.ordered_lru import OrderedLRU
from repro.workloads import markov_spatial, zipf_items

TRACE_LEN = 50_000
K = 1024


@pytest.fixture(scope="module")
def zipf_trace():
    return zipf_items(TRACE_LEN, universe=8192, alpha=1.0, block_size=64, seed=1)


@pytest.fixture(scope="module")
def spatial_trace():
    return markov_spatial(
        TRACE_LEN, universe=8192, block_size=64, stay=0.85, seed=2
    )


@pytest.mark.parametrize(
    "policy_name",
    ["item-lru", "item-clock", "block-lru", "iblp", "gcm", "athreshold-lru"],
)
def test_policy_throughput_zipf(benchmark, zipf_trace, policy_name):
    def run():
        policy = make_policy(policy_name, K, zipf_trace.mapping)
        return simulate(policy, zipf_trace, validate=False).misses

    misses = benchmark(run)
    assert 0 < misses <= TRACE_LEN


@pytest.mark.parametrize("policy_name", ["item-lru", "iblp", "block-lru"])
def test_policy_throughput_spatial(benchmark, spatial_trace, policy_name):
    def run():
        policy = make_policy(policy_name, K, spatial_trace.mapping)
        return simulate(policy, spatial_trace, validate=False).misses

    misses = benchmark(run)
    assert 0 < misses <= TRACE_LEN


def test_referee_overhead(benchmark, zipf_trace):
    """Validated run; compare against the unvalidated bench above."""

    def run():
        policy = make_policy("iblp", K, zipf_trace.mapping)
        return simulate(policy, zipf_trace, validate=True).misses

    misses = benchmark(run)
    assert misses > 0


def _lru_workout(lru_cls, keys):
    lru = lru_cls()
    resident = set()
    for key in keys:
        if key in resident:
            lru.touch(key)
        else:
            if len(resident) >= 512:
                victim, _ = lru.pop_lru()
                resident.discard(victim)
            lru.insert_mru(key)
            resident.add(key)
    return len(resident)


@pytest.fixture(scope="module")
def lru_keys():
    rng = np.random.default_rng(3)
    return rng.integers(0, 2048, size=100_000).tolist()


def test_linked_lru_throughput(benchmark, lru_keys):
    assert benchmark(_lru_workout, LinkedLRU, lru_keys) == 512


def test_ordered_lru_throughput(benchmark, lru_keys):
    assert benchmark(_lru_workout, OrderedLRU, lru_keys) == 512


def test_belady_preparation_throughput(benchmark, zipf_trace):
    """Offline next-use precomputation is a single backward pass."""
    from repro.policies.belady import next_use_array

    out = benchmark(next_use_array, zipf_trace.items)
    assert out.shape == zipf_trace.items.shape

"""E-T1: regenerate Table 1 (salient bound comparison points).

Computes all nine cells at the paper's reference block size ``B = 64``
and asserts each lands near the paper's approximate value; rows are
saved to ``out/table1.csv``.
"""

from __future__ import annotations

from repro.analysis.tables import format_table, write_csv
from repro.experiments import table1

PAPER_B = 64.0
H = 10_000.0


def test_table1_reproduction(benchmark, out_dir):
    rows = benchmark(table1.run, h=H, B=PAPER_B)
    write_csv(rows, out_dir / "table1.csv")
    print()
    print(format_table(rows, title=f"Table 1 (h={H:g}, B={PAPER_B:g})"))
    # Every cell within 25% of the paper's "~" entries; the exact-form
    # cells (constant augmentation, constant ratio) within 5%.
    for row in rows:
        assert row["rel_dev"] < 0.25, row
        if row["setting"] != "ratio_equals_augmentation":
            assert row["rel_dev"] < 0.06, row


def test_table1_generic_b(benchmark, out_dir):
    """The B-penalty structure holds for other block sizes too."""

    def compute():
        out = []
        for B in (8.0, 16.0, 256.0):
            out.extend(table1.run(h=2_000.0, B=B))
        return out

    rows = benchmark(compute)
    write_csv(rows, out_dir / "table1_generic_b.csv")
    # The exact-form cells track the paper at every B; the meeting
    # point's sqrt(B) shape is asymptotic in B, so allow more slop at
    # B=8 and require the approximation to tighten as B grows.
    for row in rows:
        if row["setting"] == "ratio_equals_augmentation":
            assert row["rel_dev"] < 0.55, row
        else:
            # The paper's "~B", "~2B", "~3" cells drop additive O(1)
            # terms, so the relative error shrinks like 1/B.
            assert row["rel_dev"] < 0.1 + 2.5 / row["B"], row


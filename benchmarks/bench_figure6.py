"""E-F6: regenerate Figure 6 (fixed vs optimal IBLP layer splits)."""

from __future__ import annotations

import pytest

from repro.analysis.tables import write_csv
from repro.experiments import figure6


def test_figure6_reproduction(benchmark, out_dir):
    k, B = figure6.PAPER_K, figure6.PAPER_B
    fixed_for = [k / 1000, k / 100, k / 10]
    rows = benchmark(
        figure6.run, k=k, B=B, fixed_for_h=fixed_for, points=100
    )
    write_csv(rows, out_dir / "figure6.csv")
    print()
    print(figure6.render(points=80))
    labels = [f"fixed_i_for_h={h0:g}" for h0 in fixed_for]
    # 1. No fixed split ever beats the optimal envelope.
    for row in rows:
        for label in labels:
            assert row[label] >= row["optimal_split"] * 0.999
    # 2. Each fixed split is tight at its own design point.
    for h0, label in zip(fixed_for, labels):
        best = min(rows, key=lambda r: abs(r["h"] - h0))
        assert best[label] == pytest.approx(best["optimal_split"], rel=0.05)
    # 3. Degradation is asymmetric: large h hurts much more than small.
    label = labels[1]
    h0 = fixed_for[1]
    small = [r for r in rows if r["h"] < h0 / 4]
    large = [r for r in rows if h0 * 4 < r["h"] < k / 2]
    small_excess = max(r[label] / r["optimal_split"] for r in small)
    large_excess = max(r[label] / r["optimal_split"] for r in large)
    assert large_excess > 2 * small_excess

"""E-F2: the §3 NP-completeness reduction preserves optimal cost.

Solves the Figure 2 worked instance and a battery of random tiny
variable-size caching instances exactly on both sides of the
reduction; every pair must agree.
"""

from __future__ import annotations

from repro.analysis.tables import format_table, write_csv
from repro.experiments import figure2


def test_reduction_preserves_optimum(benchmark, out_dir):
    rows = benchmark.pedantic(
        figure2.run, kwargs={"trials": 10, "seed": 2022}, rounds=1, iterations=1
    )
    write_csv(rows, out_dir / "figure2_reduction.csv")
    print()
    print(format_table(rows, title="Figure 2 / §3 reduction equality"))
    assert all(r["equal"] for r in rows)
    # The polynomial bracket always contains the exact optimum.
    for r in rows:
        assert r["gc_lower"] <= r["gc_opt"] <= r["gc_heuristic_upper"]


def test_figure2_worked_example(benchmark):
    """The paper's exact A/B/C instance costs 4 on both sides."""

    def solve():
        rows = figure2.run(trials=0)
        return rows[0]

    row = benchmark(solve)
    assert row["vsc_opt"] == row["gc_opt"] == 4
    assert row["gc_trace_len"] == 22

"""E-OFF: offline solver performance and bracket tightness.

Times the exact DP, the branch-and-bound, and the polynomial OPT
bracket on reduction-generated instances, and reports how tight the
bracket is where exact values are available — the practical knob for
choosing a solver at each instance size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import format_table, write_csv
from repro.core.mapping import FixedBlockMapping
from repro.core.trace import Trace
from repro.offline import (
    gc_opt_lower,
    gc_opt_upper,
    solve_gc_bnb,
    solve_gc_exact,
)
from repro.offline.reduction import figure2_instance


def test_exact_dp_on_figure2(benchmark):
    _, red = figure2_instance()
    opt = benchmark(solve_gc_exact, red.trace, red.capacity)
    assert opt == 4


def test_bnb_on_figure2(benchmark):
    _, red = figure2_instance()
    opt = benchmark(solve_gc_bnb, red.trace, red.capacity)
    assert opt == 4


def test_bnb_on_medium_instance(benchmark):
    mapping = FixedBlockMapping(universe=16, block_size=4)
    trace = Trace(
        np.random.default_rng(1).integers(0, 16, 24, dtype=np.int64), mapping
    )
    opt = benchmark(solve_gc_bnb, trace, 6)
    assert gc_opt_lower(trace, 6) <= opt <= gc_opt_upper(trace, 6)


def test_bracket_throughput_and_tightness(benchmark, out_dir):
    """The polynomial bracket scales to large traces; measure its gap
    against exact optima on small ones."""
    mapping_small = FixedBlockMapping(universe=8, block_size=4)
    rng = np.random.default_rng(2)
    rows = []
    for t in range(6):
        trace = Trace(rng.integers(0, 8, 12, dtype=np.int64), mapping_small)
        k = int(rng.integers(2, 5))
        exact = solve_gc_exact(trace, k)
        lo, hi = gc_opt_lower(trace, k), gc_opt_upper(trace, k)
        rows.append(
            {
                "instance": t,
                "k": k,
                "lower": lo,
                "exact": exact,
                "upper": hi,
                "bracket_width": hi - lo,
            }
        )
        assert lo <= exact <= hi
    write_csv(rows, out_dir / "offline_bracket.csv")
    print()
    print(format_table(rows, title="OPT bracket vs exact (small instances)"))

    # Throughput: bracket a large trace (exact solving is hopeless).
    mapping_big = FixedBlockMapping(universe=4096, block_size=8)
    big = Trace(
        np.random.default_rng(3).integers(0, 4096, 30_000, dtype=np.int64),
        mapping_big,
    )

    def bracket():
        return gc_opt_lower(big, 256), gc_opt_upper(big, 256)

    lo, hi = benchmark(bracket)
    assert lo <= hi

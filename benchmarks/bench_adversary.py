"""E-EMP: empirical competitive ratios for every §4 construction.

Plays the four adversaries against the full policy line-up at
simulator scale and checks the measured ratios against the theorems:

* Sleator–Tarjan pins LRU at ``k/(k-h+1)``;
* Theorem 2 pins item caches at ``≈ B(k-B+1)/(k-h+1)``;
* Theorem 3 pins Block-LRU at ``≈ k/(k-B(h-1))``;
* Theorem 4's probe realizes ``(a(k-h+1)+B(h-a))/(k-h+1)`` per policy.
"""

from __future__ import annotations

import pytest

from repro.adversary import GeneralAdversary
from repro.analysis.competitive import measure_adversarial
from repro.analysis.tables import format_table, write_csv
from repro.bounds import (
    block_cache_lower,
    general_a_lower,
    sleator_tarjan_lower,
)
from repro.experiments import adversarial
from repro.policies import AThresholdLRU

K, H, B = 256, 48, 8


def test_all_adversaries_all_policies(benchmark, out_dir):
    rows = benchmark.pedantic(
        adversarial.run,
        kwargs={"k": K, "h": H, "B": B, "cycles": 4},
        rounds=1,
        iterations=1,
    )
    write_csv(rows, out_dir / "adversary_matrix.csv")
    print()
    print(format_table(rows, title=f"Empirical ratios (k={K}, h={H}, B={B})"))
    by = {(r["adversary"], r["policy"]): r for r in rows}
    assert by[("sleator_tarjan", "item-lru")]["ratio"] == pytest.approx(
        sleator_tarjan_lower(K, H), rel=0.05
    )
    assert by[("thm2_item", "item-lru")]["ratio"] == pytest.approx(
        by[("thm2_item", "item-lru")]["target_bound"], rel=0.06
    )
    h3 = max(2, K // (2 * B))
    assert by[("thm3_block", "block-lru")]["ratio"] == pytest.approx(
        block_cache_lower(K, h3, B), rel=0.06
    )
    # Theorem 4 ordering: item caches worst, IBLP near the optimum.
    t4 = {p: r["ratio"] for (a, p), r in by.items() if a == "thm4_general"}
    assert t4["iblp-even"] < t4["athreshold-a4"] < t4["item-lru"]


def test_theorem4_a_sweep(benchmark, out_dir):
    """The probed-a family traces the Theorem 4 line exactly."""

    def run_sweep():
        rows = []
        for a in (1, 2, 4, 8):
            adv = GeneralAdversary(K, H, B)
            m = measure_adversarial(
                adv, lambda mp, a=a: AThresholdLRU(K, mp, a=a), cycles=4
            )
            rows.append(
                {
                    "a": a,
                    "ratio": m.ratio_vs_claimed,
                    "thm4": general_a_lower(K, H, B, a),
                }
            )
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_csv(rows, out_dir / "adversary_a_sweep.csv")
    print()
    print(format_table(rows, title="Theorem 4 a-parameter sweep"))
    for row in rows:
        assert row["ratio"] == pytest.approx(row["thm4"], rel=0.06)

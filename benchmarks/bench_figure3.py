"""E-F3: regenerate Figure 3 (competitive-ratio bounds vs ``h``).

Two parts:

1. the exact curves at the paper's parameters (``k = 1.28M, B = 64``),
   with the crossover claims checked (IBLP beats the Item Cache bound
   for ``k ≳ 3h``; beats the Block Cache bound up to ``k = Θ(B)·h``);
2. an *empirical* validation at simulator scale: the §4 adversaries
   drive real policies to their curves.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import write_csv
from repro.bounds import gc_general_lower, item_cache_lower
from repro.experiments import adversarial, figure3


def test_figure3_curves_paper_scale(benchmark, out_dir):
    rows = benchmark(figure3.run, k=figure3.PAPER_K, B=figure3.PAPER_B, points=120)
    write_csv(rows, out_dir / "figure3_curves.csv")
    print()
    print(figure3.render(points=90))
    for row in rows:
        assert row["gc_lower"] >= row["sleator_tarjan"] - 1e-9
        assert row["iblp_upper"] >= row["gc_lower"] * 0.999


def test_figure3_crossovers(benchmark, out_dir):
    cx = benchmark(figure3.crossovers)
    write_csv([cx], out_dir / "figure3_crossovers.csv")
    assert cx["item_crossover_k_over_h"] == pytest.approx(3.0, rel=0.15)
    assert 64 <= cx["block_crossover_k_over_h"] <= 8 * 64


def test_figure3_empirical_adversaries(benchmark, out_dir):
    """Measured competitive ratios realize the plotted bounds."""
    rows = benchmark.pedantic(
        adversarial.run,
        kwargs={"k": 256, "h": 48, "B": 8, "cycles": 3},
        rounds=1,
        iterations=1,
    )
    write_csv(rows, out_dir / "figure3_empirical.csv")
    by = {(r["adversary"], r["policy"]): r for r in rows}
    k, h, B = 256, 48, 8
    # Item caches pinned at the Theorem 2 curve.
    assert by[("thm2_item", "item-lru")]["ratio"] == pytest.approx(
        item_cache_lower(k, h, B), rel=0.1
    )
    # IBLP sits near the general lower bound under the Thm 4 adversary.
    iblp = by[("thm4_general", "iblp-even")]["ratio"]
    assert iblp <= gc_general_lower(k, h, B) * 1.1
    # And every policy respects the general lower bound.
    for (adv, _pol), row in by.items():
        if adv == "thm4_general":
            assert row["ratio"] >= gc_general_lower(k, h, B) * 0.85

"""The perf flight recorder: uniform ``BENCH_<name>.json`` emission.

Every timing bench funnels its headline numbers through
:func:`write_bench`, which stamps the payload with the machine
fingerprint, the git sha, and a schema the comparison gate
(:mod:`repro.obs.bench_compare`) understands: a ``metrics`` mapping of
``{"value", "unit", "direction"}`` triples, where ``direction`` says
which way is *worse* — ``"lower"`` metrics (wall seconds) regress by
growing, ``"higher"`` metrics (speedups, throughput) by shrinking.

Two copies are written: ``BENCH_<name>.json`` at the repo root (the
flight-recorder location CI diffs against a committed baseline with
``gc-caching obs bench-compare``) and a timestamped-free mirror under
``benchmarks/out/`` next to the other artifacts.

Raw wall seconds only compare on similar machines; derived ratios
(speedups) are machine-independent, which is why every bench also
records them and CI gates on those via ``--metrics``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["git_sha", "machine_fingerprint", "metric", "write_bench"]

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
OUT_DIR = BENCH_DIR / "out"

_DIRECTIONS = ("lower", "higher")


def git_sha() -> Optional[str]:
    """Current commit sha, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def machine_fingerprint() -> Dict[str, Any]:
    """Enough context to judge whether two bench files are comparable."""
    return {
        "node": platform.node(),
        "system": platform.system(),
        "release": platform.release(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def metric(value: float, unit: str, direction: str = "lower") -> Dict[str, Any]:
    """One flight-recorder metric; ``direction`` is the *bad* way."""
    if direction not in _DIRECTIONS:
        raise ValueError(
            f"direction must be one of {_DIRECTIONS}, got {direction!r}"
        )
    return {"value": float(value), "unit": unit, "direction": direction}


def write_bench(
    name: str,
    metrics: Dict[str, Dict[str, Any]],
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` (repo root + ``benchmarks/out/``).

    ``metrics`` values come from :func:`metric`; ``extra`` carries
    bench-specific context (trace lengths, worker counts, raw rows)
    that the compare gate ignores but humans want in the record.
    Returns the repo-root path.
    """
    for metric_name, payload in metrics.items():
        if "value" not in payload:
            raise ValueError(f"metric {metric_name!r} has no value")
        if payload.get("direction", "lower") not in _DIRECTIONS:
            raise ValueError(
                f"metric {metric_name!r} direction must be one of "
                f"{_DIRECTIONS}, got {payload.get('direction')!r}"
            )
    record: Dict[str, Any] = {
        "bench": name,
        "schema": 1,
        "unix_time": int(time.time()),
        "git_sha": git_sha(),
        "machine": machine_fingerprint(),
        "metrics": metrics,
    }
    if extra:
        for key in extra:
            if key in record:
                raise ValueError(f"extra key {key!r} shadows a harness field")
        record.update(extra)
    text = json.dumps(record, indent=1, sort_keys=True) + "\n"
    root_path = REPO_ROOT / f"BENCH_{name}.json"
    root_path.write_text(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / root_path.name).write_text(text)
    return root_path

"""E-ABL: design-choice ablations (§4.4, §5.1, §6).

Each test pins one design argument from the paper to a measured
outcome: layer ordering, load granularity extremes, eviction
granularity, and GCM's unmarked side loads.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table, write_csv
from repro.bounds import general_a_lower
from repro.experiments import ablation

K, B = 256, 8


def test_layer_order(benchmark, out_dir):
    rows = benchmark.pedantic(
        ablation.layer_order, kwargs={"k": K, "B": B}, rounds=1, iterations=1
    )
    write_csv(rows, out_dir / "ablation_layer_order.csv")
    print()
    print(format_table(rows, title="§5.1 layer ordering"))
    by = {r["policy"]: r["misses"] for r in rows}
    assert by["iblp"] < 0.25 * by["iblp-blockfirst"]


def test_athreshold_extremes(benchmark, out_dir):
    rows = benchmark.pedantic(
        ablation.athreshold_sweep,
        kwargs={"k": K, "h": 48, "B": B, "cycles": 4},
        rounds=1,
        iterations=1,
    )
    write_csv(rows, out_dir / "ablation_athreshold.csv")
    print()
    print(format_table(rows, title="§4.4 a-threshold sweep"))
    ratios = {r["a"]: r["ratio"] for r in rows}
    # §4.4: the optimum over a is at an extreme (here k-h+1 > B => a=1),
    # middle values are strictly worse, and each matches Theorem 4.
    assert min(ratios, key=ratios.get) == 1
    assert ratios[B // 2] > ratios[1]
    for a, ratio in ratios.items():
        assert ratio == pytest.approx(general_a_lower(K, 48, B, a), rel=0.08)


def test_eviction_granularity(benchmark, out_dir):
    rows = benchmark.pedantic(
        ablation.eviction_granularity,
        kwargs={"k": K, "B": B},
        rounds=1,
        iterations=1,
    )
    write_csv(rows, out_dir / "ablation_eviction.csv")
    print()
    print(format_table(rows, title="§4.4 eviction granularity"))
    by = {r["policy"]: r["misses"] for r in rows}
    assert by["athreshold-lru"] <= by["block-lru"]
    assert by["iblp"] < 0.7 * by["block-lru"]


def test_gcm_variants(benchmark, out_dir):
    rows = benchmark.pedantic(
        ablation.gcm_variants, kwargs={"k": K, "B": B}, rounds=1, iterations=1
    )
    write_csv(rows, out_dir / "ablation_gcm.csv")
    print()
    print(format_table(rows, title="§6 GCM marking discipline"))
    by = {r["policy"]: r for r in rows}
    # GCM exploits spatial locality that block-oblivious marking wastes.
    assert by["gcm"]["misses"] <= by["marking-lru"]["misses"]
    assert by["gcm"]["spatial_hits"] > by["marking-lru"]["spatial_hits"]
    assert by["gcm"]["spatial_fraction"] > by["marking-lru"]["spatial_fraction"]

"""E-CLUSTER: cluster replay overhead + the degradation separation.

Times one 4-shard block-aware cluster replay of IBLP on a spatial
Markov trace against the sum of the four per-shard single-cache
``simulate()`` calls over the same sub-traces.  The cluster engine
adds the vectorized routing pass, sub-trace construction, derived
fingerprints, and the merge on top of work that is otherwise identical,
so the machine-independent ``cluster_overhead`` ratio
``cluster_seconds / sum(per-shard referee seconds)`` is the cost of the
sharding layer itself — the number the CI gate pins at ≤2×.

The run also re-asserts the conservation invariant (merged taxonomy ==
per-shard sums) and records the paper-facing headline as a
machine-independent ratio: the IBLP-vs-item-LRU miss gap under
block-aware hashing divided by the gap under item-striped hashing at
the same shard count (``gap_retention`` > 1 means striping destroys
granularity-change value that block-aware hashing keeps).

Writes ``BENCH_cluster.json`` through the flight-recorder harness.

Knobs (env vars, so CI can shrink the run):

* ``REPRO_CLUSTER_BENCH_LEN`` — trace length (default 300_000)
* ``REPRO_CLUSTER_GATE``      — max overhead ratio (default 2.0)

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_cluster.py``.
"""

from __future__ import annotations

import os
import time

import pytest

from _harness import metric, write_bench
from repro.cluster import ClusterSpec, replay_cluster
from repro.core.engine import simulate
from repro.policies import make_policy
from repro.workloads import markov_spatial

LENGTH = int(os.environ.get("REPRO_CLUSTER_BENCH_LEN", "300000"))
GATE = float(os.environ.get("REPRO_CLUSTER_GATE", "2.0"))
CAPACITY = 256
N_SHARDS = 4


@pytest.fixture(scope="module")
def bench_trace():
    return markov_spatial(
        length=LENGTH, universe=4096, block_size=8, stay=0.85, seed=7
    )


def _miss_gap(trace, scheme):
    """item-LRU minus IBLP miss ratio on a 4-shard cluster."""
    spec = ClusterSpec(n_shards=N_SHARDS, scheme=scheme)
    lru = replay_cluster("item-lru", CAPACITY, trace, spec, fast=True)
    iblp = replay_cluster("iblp", CAPACITY, trace, spec, fast=True)
    return lru.sim.miss_ratio - iblp.sim.miss_ratio


def test_cluster_overhead_gate(bench_trace, out_dir):
    spec = ClusterSpec(n_shards=N_SHARDS, scheme="block")

    t0 = time.perf_counter()
    clustered = replay_cluster("iblp", CAPACITY, bench_trace, spec, fast=False)
    t_cluster = time.perf_counter() - t0

    # The comparison floor: the same four sub-traces through plain
    # single-cache referee replays (no routing, no merge).
    plan = spec.router().split(bench_trace)
    shard_capacity = spec.shard_capacity(CAPACITY)
    t_shards = 0.0
    for sub in plan.subtraces:
        policy = make_policy("iblp", shard_capacity, sub.mapping)
        t0 = time.perf_counter()
        simulate(policy, sub, fast=False)
        t_shards += time.perf_counter() - t0

    # Conservation must hold on the timed run itself.
    assert clustered.sim.accesses == LENGTH
    assert clustered.sim.misses == sum(s.misses for s in clustered.shards)

    block_gap = _miss_gap(bench_trace, "block")
    item_gap = _miss_gap(bench_trace, "item")
    gap_retention = block_gap / max(item_gap, 1e-9)

    overhead = t_cluster / t_shards
    path = write_bench(
        "cluster",
        metrics={
            "cluster_seconds": metric(t_cluster, "s", "lower"),
            "per_shard_seconds": metric(t_shards, "s", "lower"),
            "accesses_per_second": metric(
                LENGTH / t_cluster, "acc/s", "higher"
            ),
            "cluster_overhead": metric(overhead, "x", "lower"),
            "gap_retention": metric(gap_retention, "x", "higher"),
        },
        extra={
            "trace_length": LENGTH,
            "capacity": CAPACITY,
            "n_shards": N_SHARDS,
            "block_scheme_miss_gap": block_gap,
            "item_scheme_miss_gap": item_gap,
            "gate": GATE,
        },
    )
    print(
        f"\ncluster: {LENGTH} accesses x {N_SHARDS} shards in "
        f"{t_cluster:.2f}s vs {t_shards:.2f}s per-shard floor, "
        f"overhead {overhead:.2f}x, gap retention {gap_retention:.2f}x "
        f"-> {path}"
    )
    assert overhead <= GATE, (
        f"cluster overhead {overhead:.2f}x above the {GATE:.1f}x gate "
        f"(cluster {t_cluster:.2f}s vs per-shard floor {t_shards:.2f}s)"
    )
    assert gap_retention > 1.0, (
        f"block-aware hashing kept a smaller miss gap ({block_gap:.3f}) "
        f"than item striping ({item_gap:.3f})"
    )
